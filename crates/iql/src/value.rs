//! Runtime values and the bag algebra.
//!
//! Values are cheap to clone by construction: strings are `Arc<str>`, tuples are
//! `Arc<[Value]>`, and bags share their element vector behind an `Arc` with
//! copy-on-write mutation. The evaluator clones values per generated row, so keeping
//! `Value::clone` at a reference-count bump (rather than a deep copy) is what lets
//! comprehension evaluation run at memory bandwidth instead of allocator throughput.
//!
//! The bag operations (`difference`, `intersection`, `distinct`, `same_elements`,
//! `subbag_of`) run on hash-based multiplicity counts. `Value` implements [`Hash`]
//! consistently with its (numeric-coercing) `Eq`: `Int(2)` and `Float(2.0)` compare
//! equal and therefore hash identically, via the normalised bit pattern of the value
//! as an `f64`. The one unavoidable wart is `NaN`, which the pre-existing `Ord` treats
//! as equal to every float; hash-based ops canonicalise `NaN` to a single bucket, so
//! bags containing `NaN` may differ from the ordering-based reference semantics.
//! Queries over real extents never produce `NaN`.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::EvalError;

/// A runtime IQL value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Absent / unknown.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string (shared; clone is a refcount bump).
    Str(Arc<str>),
    /// A tuple of values (shared; clone is a refcount bump).
    Tuple(Arc<[Value]>),
    /// A bag (multiset) of values.
    Bag(Bag),
    /// The empty collection constant `Void`.
    Void,
    /// The unrestricted collection constant `Any`.
    Any,
}

impl Value {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Value {
        Value::Str(s.into())
    }

    /// Shorthand for a tuple value from a vector of components.
    pub fn tuple(items: Vec<Value>) -> Value {
        Value::Tuple(items.into())
    }

    /// Shorthand for a two-element tuple (the common `{key, value}` shape).
    pub fn pair(a: Value, b: Value) -> Value {
        Value::Tuple(Arc::from([a, b]))
    }

    /// True when the value is "truthy" in a filter position: only `Bool(true)` counts.
    pub fn as_bool(&self) -> Result<bool, EvalError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(EvalError::TypeError {
                context: "boolean context".into(),
                found: other.type_name().to_string(),
            }),
        }
    }

    /// Extract a bag, treating `Void` as the empty bag. Cheap: bags share their
    /// elements, so the returned clone is a refcount bump.
    pub fn expect_bag(&self) -> Result<Bag, EvalError> {
        match self {
            Value::Bag(b) => Ok(b.clone()),
            Value::Void => Ok(Bag::empty()),
            Value::Any => Err(EvalError::UnboundedExtent),
            other => Err(EvalError::TypeError {
                context: "collection context".into(),
                found: other.type_name().to_string(),
            }),
        }
    }

    /// Numeric view of the value, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Estimated resident bytes of this value tree — the cache-weighting
    /// heuristic shared by the byte-budgeted LRU stores. Deliberately rough:
    /// a flat per-node overhead (enum + allocation headers) plus string
    /// payloads; `Arc`-sharing is *not* discounted, so a value counted in two
    /// caches is budgeted in both (over-, never under-estimating residency).
    pub fn approx_bytes(&self) -> u64 {
        match self {
            Value::Null
            | Value::Bool(_)
            | Value::Int(_)
            | Value::Float(_)
            | Value::Void
            | Value::Any => 32,
            Value::Str(s) => 48 + s.len() as u64,
            Value::Tuple(items) => 48 + items.iter().map(Value::approx_bytes).sum::<u64>(),
            Value::Bag(bag) => bag.approx_bytes(),
        }
    }

    /// A short tag describing the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Tuple(_) => "tuple",
            Value::Bag(_) => "bag",
            Value::Void => "Void",
            Value::Any => "Any",
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // ints and floats compare numerically
            Value::Str(_) => 3,
            Value::Tuple(_) => 4,
            Value::Bag(_) => 5,
            Value::Void => 6,
            Value::Any => 7,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) | (Void, Void) | (Any, Any) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Str(a), Str(b)) => a.cmp(b),
            (Tuple(a), Tuple(b)) => a[..].cmp(&b[..]),
            (Bag(a), Bag(b)) => a.canonical().cmp(&b.canonical()),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

/// Normalise a float for hashing so that hash-equality follows `Eq`:
/// `-0.0 == 0.0` and `Int(n) == Float(n as f64)` must hash identically. `NaN`
/// canonicalises to one bit pattern (see the module docs for the caveat).
fn float_hash_bits(f: f64) -> u64 {
    if f == 0.0 {
        0.0f64.to_bits()
    } else if f.is_nan() {
        f64::NAN.to_bits()
    } else {
        f.to_bits()
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Ints and floats compare numerically, so both hash the numeric value's
            // f64 bit pattern (ints beyond 2^53 may collide with their neighbours,
            // which only costs a bucket collision, never a wrong answer).
            Value::Int(i) => {
                state.write_u8(2);
                state.write_u64(float_hash_bits(*i as f64));
            }
            Value::Float(f) => {
                state.write_u8(2);
                state.write_u64(float_hash_bits(*f));
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
            Value::Tuple(items) => {
                state.write_u8(4);
                state.write_usize(items.len());
                for v in items.iter() {
                    v.hash(state);
                }
            }
            Value::Bag(b) => {
                state.write_u8(5);
                b.hash(state);
            }
            Value::Void => state.write_u8(6),
            Value::Any => state.write_u8(7),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.into())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v.into())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Tuple(items) => {
                write!(f, "{{")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Value::Bag(b) => write!(f, "{b}"),
            Value::Void => write!(f, "Void"),
            Value::Any => write!(f, "Any"),
        }
    }
}

/// A bag (multiset) of values.
///
/// Bags preserve duplicates and insertion order; equality is defined on element
/// multiplicities (order-insensitive), matching the declarative reading of bag
/// semantics in the paper while keeping evaluation deterministic.
///
/// The element vector is shared behind an `Arc`: cloning a bag is O(1), and mutation
/// (`push`) copies only when the elements are actually shared (copy-on-write). This is
/// what lets extent caches hand out their bags without deep copies.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Bag {
    items: Arc<Vec<Value>>,
}

impl Bag {
    /// The empty bag.
    pub fn empty() -> Self {
        Bag::default()
    }

    /// Build a bag from a vector of values (order preserved).
    pub fn from_values(items: Vec<Value>) -> Self {
        Bag {
            items: Arc::new(items),
        }
    }

    /// Number of elements, counting duplicates.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the bag has no elements.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Append a value (copy-on-write: clones the elements only if shared).
    pub fn push(&mut self, value: Value) {
        Arc::make_mut(&mut self.items).push(value);
    }

    /// Iterate over elements in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.items.iter()
    }

    /// The underlying elements in insertion order.
    pub fn items(&self) -> &[Value] {
        &self.items
    }

    /// Consume the bag, returning its elements (no copy when unshared).
    pub fn into_items(self) -> Vec<Value> {
        Arc::try_unwrap(self.items).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Estimated resident bytes of the bag and its elements (see
    /// [`Value::approx_bytes`] for the heuristic).
    pub fn approx_bytes(&self) -> u64 {
        64 + self.items.iter().map(Value::approx_bytes).sum::<u64>()
    }

    /// Multiplicity counts of every element, built in one pass.
    fn counts(&self) -> HashMap<&Value, usize> {
        let mut counts = HashMap::with_capacity(self.items.len());
        for v in self.items.iter() {
            *counts.entry(v).or_insert(0) += 1;
        }
        counts
    }

    /// Bag union `++`: concatenation of multiplicities. O(1) when either side is
    /// empty (the other side's elements are shared, not copied).
    pub fn union(&self, other: &Bag) -> Bag {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut items = Vec::with_capacity(self.len() + other.len());
        items.extend(self.items.iter().cloned());
        items.extend(other.items.iter().cloned());
        Bag::from_values(items)
    }

    /// Bag difference (monus) `--`: removes one occurrence from `self` for each
    /// occurrence in `other`.
    pub fn difference(&self, other: &Bag) -> Bag {
        if other.is_empty() {
            return self.clone();
        }
        let mut counts = other.counts();
        let mut items = Vec::new();
        for v in self.items.iter() {
            match counts.get_mut(v) {
                Some(c) if *c > 0 => *c -= 1,
                _ => items.push(v.clone()),
            }
        }
        Bag::from_values(items)
    }

    /// Bag intersection: minimum of multiplicities.
    pub fn intersection(&self, other: &Bag) -> Bag {
        let mut counts = other.counts();
        let mut items = Vec::new();
        for v in self.items.iter() {
            if let Some(c) = counts.get_mut(v) {
                if *c > 0 {
                    *c -= 1;
                    items.push(v.clone());
                }
            }
        }
        Bag::from_values(items)
    }

    /// Whether a value occurs at least once in the bag.
    pub fn contains(&self, value: &Value) -> bool {
        self.items.contains(value)
    }

    /// Multiplicity of a value.
    pub fn multiplicity(&self, value: &Value) -> usize {
        self.items.iter().filter(|v| *v == value).count()
    }

    /// Duplicate-eliminated copy (set semantics), preserving first-occurrence order.
    pub fn distinct(&self) -> Bag {
        let mut seen: HashMap<&Value, ()> = HashMap::with_capacity(self.items.len());
        let mut items = Vec::new();
        for v in self.items.iter() {
            if let Entry::Vacant(slot) = seen.entry(v) {
                slot.insert(());
                items.push(v.clone());
            }
        }
        Bag::from_values(items)
    }

    /// A sorted copy of the elements, used for order-insensitive comparison.
    pub fn canonical(&self) -> Vec<Value> {
        let mut v = (*self.items).clone();
        v.sort();
        v
    }

    /// Whether two bags contain the same elements with the same multiplicities,
    /// regardless of order. Runs on hash counts: O(n) expected.
    pub fn same_elements(&self, other: &Bag) -> bool {
        if self.len() != other.len() {
            return false;
        }
        if Arc::ptr_eq(&self.items, &other.items) {
            return true;
        }
        let mut counts = self.counts();
        for v in other.items.iter() {
            match counts.get_mut(v) {
                Some(c) if *c > 0 => *c -= 1,
                _ => return false,
            }
        }
        true
    }

    /// Whether `self` is contained in `other` as a sub-bag (multiplicity-wise).
    pub fn subbag_of(&self, other: &Bag) -> bool {
        if self.len() > other.len() {
            return false;
        }
        let mut counts = other.counts();
        for v in self.items.iter() {
            match counts.get_mut(v) {
                Some(c) if *c > 0 => *c -= 1,
                _ => return false,
            }
        }
        true
    }
}

impl PartialEq for Bag {
    fn eq(&self, other: &Self) -> bool {
        self.same_elements(other)
    }
}

impl Eq for Bag {}

impl Hash for Bag {
    /// Order-insensitive hash: combines per-element hashes commutatively so equal
    /// bags (same multiset, any order) hash identically.
    fn hash<H: Hasher>(&self, state: &mut H) {
        let mut acc: u64 = 0;
        for v in self.items.iter() {
            let mut h = DefaultHasher::new();
            v.hash(&mut h);
            acc = acc.wrapping_add(h.finish());
        }
        state.write_usize(self.items.len());
        state.write_u64(acc);
    }
}

impl FromIterator<Value> for Bag {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Bag::from_values(iter.into_iter().collect())
    }
}

impl fmt::Display for Bag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bag(vals: &[i64]) -> Bag {
        Bag::from_values(vals.iter().map(|v| Value::Int(*v)).collect())
    }

    fn hash_of(v: &impl Hash) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn union_preserves_multiplicities() {
        let u = bag(&[1, 2]).union(&bag(&[2, 3]));
        assert_eq!(u.len(), 4);
        assert_eq!(u.multiplicity(&Value::Int(2)), 2);
    }

    #[test]
    fn union_with_empty_shares_elements() {
        let a = bag(&[1, 2, 3]);
        let u = a.union(&Bag::empty());
        assert!(Arc::ptr_eq(&a.items, &u.items));
        let u2 = Bag::empty().union(&a);
        assert!(Arc::ptr_eq(&a.items, &u2.items));
    }

    #[test]
    fn difference_is_monus() {
        let d = bag(&[1, 2, 2, 3]).difference(&bag(&[2, 4]));
        assert_eq!(d.canonical(), bag(&[1, 2, 3]).canonical());
        // removing more than present leaves zero, not negative
        let d2 = bag(&[1]).difference(&bag(&[1, 1]));
        assert!(d2.is_empty());
    }

    #[test]
    fn intersection_takes_min_multiplicity() {
        let i = bag(&[1, 1, 2, 3]).intersection(&bag(&[1, 2, 2]));
        assert_eq!(i.canonical(), bag(&[1, 2]).canonical());
    }

    #[test]
    fn distinct_removes_duplicates_preserving_order() {
        let d = bag(&[3, 1, 3, 2, 1]).distinct();
        assert_eq!(d.items(), &[Value::Int(3), Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn bag_equality_is_order_insensitive() {
        assert_eq!(bag(&[1, 2, 3]), bag(&[3, 2, 1]));
        assert_ne!(bag(&[1, 2]), bag(&[1, 2, 2]));
    }

    #[test]
    fn subbag_relation() {
        assert!(bag(&[1, 2]).subbag_of(&bag(&[2, 1, 3])));
        assert!(!bag(&[1, 1]).subbag_of(&bag(&[1, 2])));
        assert!(Bag::empty().subbag_of(&bag(&[])));
    }

    #[test]
    fn value_mixed_numeric_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
    }

    #[test]
    fn hash_agrees_with_numeric_equality() {
        assert_eq!(hash_of(&Value::Int(2)), hash_of(&Value::Float(2.0)));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
        assert_eq!(hash_of(&Value::Int(0)), hash_of(&Value::Float(-0.0)));
        assert_ne!(hash_of(&Value::Int(2)), hash_of(&Value::Int(3)));
    }

    #[test]
    fn bag_hash_is_order_insensitive() {
        assert_eq!(
            hash_of(&Value::Bag(bag(&[1, 2, 3]))),
            hash_of(&Value::Bag(bag(&[3, 1, 2])))
        );
        let nested_a = Value::Bag(Bag::from_values(vec![
            Value::pair(Value::Int(1), Value::str("a")),
            Value::pair(Value::Int(2), Value::str("b")),
        ]));
        let nested_b = Value::Bag(Bag::from_values(vec![
            Value::pair(Value::Int(2), Value::str("b")),
            Value::pair(Value::Int(1), Value::str("a")),
        ]));
        assert_eq!(nested_a, nested_b);
        assert_eq!(hash_of(&nested_a), hash_of(&nested_b));
    }

    #[test]
    fn clone_shares_push_copies_on_write() {
        let a = bag(&[1, 2]);
        let mut b = a.clone();
        assert!(Arc::ptr_eq(&a.items, &b.items));
        b.push(Value::Int(3));
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn expect_bag_treats_void_as_empty() {
        assert!(Value::Void.expect_bag().unwrap().is_empty());
        assert!(Value::Any.expect_bag().is_err());
        assert!(Value::Int(1).expect_bag().is_err());
    }

    #[test]
    fn display_nested() {
        let v = Value::tuple(vec![Value::str("PEDRO"), Value::Int(1)]);
        assert_eq!(v.to_string(), "{'PEDRO', 1}");
        let b = Bag::from_values(vec![v]);
        assert_eq!(b.to_string(), "[{'PEDRO', 1}]");
    }
}
