//! Runtime values and the bag algebra.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

use crate::error::EvalError;

/// A runtime IQL value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Absent / unknown.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// A tuple of values.
    Tuple(Vec<Value>),
    /// A bag (multiset) of values.
    Bag(Bag),
    /// The empty collection constant `Void`.
    Void,
    /// The unrestricted collection constant `Any`.
    Any,
}

impl Value {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Shorthand for a two-element tuple (the common `{key, value}` shape).
    pub fn pair(a: Value, b: Value) -> Value {
        Value::Tuple(vec![a, b])
    }

    /// True when the value is "truthy" in a filter position: only `Bool(true)` counts.
    pub fn as_bool(&self) -> Result<bool, EvalError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(EvalError::TypeError {
                context: "boolean context".into(),
                found: other.type_name().to_string(),
            }),
        }
    }

    /// Extract a bag, treating `Void` as the empty bag.
    pub fn expect_bag(&self) -> Result<Bag, EvalError> {
        match self {
            Value::Bag(b) => Ok(b.clone()),
            Value::Void => Ok(Bag::empty()),
            Value::Any => Err(EvalError::UnboundedExtent),
            other => Err(EvalError::TypeError {
                context: "collection context".into(),
                found: other.type_name().to_string(),
            }),
        }
    }

    /// Numeric view of the value, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// A short tag describing the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Tuple(_) => "tuple",
            Value::Bag(_) => "bag",
            Value::Void => "Void",
            Value::Any => "Any",
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // ints and floats compare numerically
            Value::Str(_) => 3,
            Value::Tuple(_) => 4,
            Value::Bag(_) => 5,
            Value::Void => 6,
            Value::Any => 7,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) | (Void, Void) | (Any, Any) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Str(a), Str(b)) => a.cmp(b),
            (Tuple(a), Tuple(b)) => a.cmp(b),
            (Bag(a), Bag(b)) => a.canonical().cmp(&b.canonical()),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Tuple(items) => {
                write!(f, "{{")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Value::Bag(b) => write!(f, "{b}"),
            Value::Void => write!(f, "Void"),
            Value::Any => write!(f, "Any"),
        }
    }
}

/// A bag (multiset) of values.
///
/// Bags preserve duplicates and insertion order; equality and ordering are defined on
/// the *canonical* (sorted) element sequence so that two bags with the same elements in
/// different orders compare equal — matching the declarative reading of bag semantics
/// in the paper while keeping evaluation deterministic.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Bag {
    items: Vec<Value>,
}

impl Bag {
    /// The empty bag.
    pub fn empty() -> Self {
        Bag { items: Vec::new() }
    }

    /// Build a bag from a vector of values (order preserved).
    pub fn from_values(items: Vec<Value>) -> Self {
        Bag { items }
    }

    /// Number of elements, counting duplicates.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the bag has no elements.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Append a value.
    pub fn push(&mut self, value: Value) {
        self.items.push(value);
    }

    /// Iterate over elements in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.items.iter()
    }

    /// The underlying elements in insertion order.
    pub fn items(&self) -> &[Value] {
        &self.items
    }

    /// Consume the bag, returning its elements.
    pub fn into_items(self) -> Vec<Value> {
        self.items
    }

    /// Bag union `++`: concatenation of multiplicities.
    pub fn union(&self, other: &Bag) -> Bag {
        let mut items = self.items.clone();
        items.extend(other.items.iter().cloned());
        Bag { items }
    }

    /// Bag difference (monus) `--`: removes one occurrence from `self` for each
    /// occurrence in `other`.
    pub fn difference(&self, other: &Bag) -> Bag {
        let mut counts: BTreeMap<Value, usize> = BTreeMap::new();
        for v in &other.items {
            *counts.entry(v.clone()).or_insert(0) += 1;
        }
        let mut items = Vec::new();
        for v in &self.items {
            match counts.get_mut(v) {
                Some(c) if *c > 0 => *c -= 1,
                _ => items.push(v.clone()),
            }
        }
        Bag { items }
    }

    /// Bag intersection: minimum of multiplicities.
    pub fn intersection(&self, other: &Bag) -> Bag {
        let mut counts: BTreeMap<Value, usize> = BTreeMap::new();
        for v in &other.items {
            *counts.entry(v.clone()).or_insert(0) += 1;
        }
        let mut items = Vec::new();
        for v in &self.items {
            if let Some(c) = counts.get_mut(v) {
                if *c > 0 {
                    *c -= 1;
                    items.push(v.clone());
                }
            }
        }
        Bag { items }
    }

    /// Whether a value occurs at least once in the bag.
    pub fn contains(&self, value: &Value) -> bool {
        self.items.contains(value)
    }

    /// Multiplicity of a value.
    pub fn multiplicity(&self, value: &Value) -> usize {
        self.items.iter().filter(|v| *v == value).count()
    }

    /// Duplicate-eliminated copy (set semantics), preserving first-occurrence order.
    pub fn distinct(&self) -> Bag {
        let mut seen = std::collections::BTreeSet::new();
        let mut items = Vec::new();
        for v in &self.items {
            if seen.insert(v.clone()) {
                items.push(v.clone());
            }
        }
        Bag { items }
    }

    /// A sorted copy of the elements, used for order-insensitive comparison.
    pub fn canonical(&self) -> Vec<Value> {
        let mut v = self.items.clone();
        v.sort();
        v
    }

    /// Whether two bags contain the same elements with the same multiplicities,
    /// regardless of order.
    pub fn same_elements(&self, other: &Bag) -> bool {
        self.canonical() == other.canonical()
    }

    /// Whether `self` is contained in `other` as a sub-bag (multiplicity-wise).
    pub fn subbag_of(&self, other: &Bag) -> bool {
        let mut counts: BTreeMap<Value, usize> = BTreeMap::new();
        for v in &other.items {
            *counts.entry(v.clone()).or_insert(0) += 1;
        }
        for v in &self.items {
            match counts.get_mut(v) {
                Some(c) if *c > 0 => *c -= 1,
                _ => return false,
            }
        }
        true
    }
}

impl PartialEq for Bag {
    fn eq(&self, other: &Self) -> bool {
        self.same_elements(other)
    }
}

impl Eq for Bag {}

impl FromIterator<Value> for Bag {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Bag {
            items: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for Bag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bag(vals: &[i64]) -> Bag {
        Bag::from_values(vals.iter().map(|v| Value::Int(*v)).collect())
    }

    #[test]
    fn union_preserves_multiplicities() {
        let u = bag(&[1, 2]).union(&bag(&[2, 3]));
        assert_eq!(u.len(), 4);
        assert_eq!(u.multiplicity(&Value::Int(2)), 2);
    }

    #[test]
    fn difference_is_monus() {
        let d = bag(&[1, 2, 2, 3]).difference(&bag(&[2, 4]));
        assert_eq!(d.canonical(), bag(&[1, 2, 3]).canonical());
        // removing more than present leaves zero, not negative
        let d2 = bag(&[1]).difference(&bag(&[1, 1]));
        assert!(d2.is_empty());
    }

    #[test]
    fn intersection_takes_min_multiplicity() {
        let i = bag(&[1, 1, 2, 3]).intersection(&bag(&[1, 2, 2]));
        assert_eq!(i.canonical(), bag(&[1, 2]).canonical());
    }

    #[test]
    fn distinct_removes_duplicates_preserving_order() {
        let d = bag(&[3, 1, 3, 2, 1]).distinct();
        assert_eq!(
            d.items(),
            &[Value::Int(3), Value::Int(1), Value::Int(2)]
        );
    }

    #[test]
    fn bag_equality_is_order_insensitive() {
        assert_eq!(bag(&[1, 2, 3]), bag(&[3, 2, 1]));
        assert_ne!(bag(&[1, 2]), bag(&[1, 2, 2]));
    }

    #[test]
    fn subbag_relation() {
        assert!(bag(&[1, 2]).subbag_of(&bag(&[2, 1, 3])));
        assert!(!bag(&[1, 1]).subbag_of(&bag(&[1, 2])));
        assert!(Bag::empty().subbag_of(&bag(&[])));
    }

    #[test]
    fn value_mixed_numeric_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
    }

    #[test]
    fn expect_bag_treats_void_as_empty() {
        assert!(Value::Void.expect_bag().unwrap().is_empty());
        assert!(Value::Any.expect_bag().is_err());
        assert!(Value::Int(1).expect_bag().is_err());
    }

    #[test]
    fn display_nested() {
        let v = Value::Tuple(vec![Value::str("PEDRO"), Value::Int(1)]);
        assert_eq!(v.to_string(), "{'PEDRO', 1}");
        let b = Bag::from_values(vec![v]);
        assert_eq!(b.to_string(), "[{'PEDRO', 1}]");
    }
}
