//! A persistent store of secondary point-lookup indexes.
//!
//! The prepared-query path (see [`crate::PlanCache`]) caches one plan per query
//! shape, but a residual equality filter — `x = ?p` over a generator's bound
//! variable — still rescanned its extent on every execution: the filter is not
//! an equi-*join*, so the hash-join machinery never indexed it. The
//! [`IndexStore`] closes that gap. When the planner meets a generator followed
//! by `var = ?param` / `var = literal` filters over a closed source, it builds
//! (or fetches) a hash index from the filtered variables to the matching source
//! elements and emits an `IndexLookup` step: each execution evaluates the key
//! expressions under the current parameter bindings and probes in O(1) instead
//! of scanning.
//!
//! The store lives *beside* the plan cache rather than inside it, because the
//! two have different lifetimes: a version bump invalidates every cached plan,
//! but an append-only provider (the relational store, whose inserts only ever
//! push to extent tails — see [`crate::eval::ExtentProvider::extents_append_only`])
//! can refresh an index copy-on-write by scanning just the appended tail.
//! Replanning after an insert therefore finds a warm, refreshed index instead
//! of rebuilding from scratch.
//!
//! Entries are LRU-bounded by count *and* by estimated bytes (see
//! [`crate::lru::LruMap::with_weight_budget`]): one index over a large extent
//! can dwarf hundreds over small ones, so eviction weighs entries by their
//! bucket and row footprint. Hits, misses, builds, copy-on-write refreshes and
//! evictions are all counted, surfacing in `Dataspace::stats()`.

use crate::ast::{Expr, Pattern};
use crate::lru::LruMap;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Default maximum number of indexes held.
pub const DEFAULT_INDEX_CAPACITY: usize = 256;

/// Default byte budget across all held indexes (64 MiB of estimated footprint).
pub const DEFAULT_INDEX_BYTES: u64 = 64 << 20;

/// A built point-lookup index: composite filter key → matching source elements,
/// each bucket preserving source order so probes reproduce nested-loop output
/// order exactly.
#[derive(Debug, Clone, Default)]
pub(crate) struct PointIndex {
    /// Composite key (see `eval::composite_key`) → source elements, in order.
    pub(crate) buckets: HashMap<Value, Vec<Value>>,
    /// Total elements indexed (sum of bucket lengths).
    pub(crate) rows: usize,
    /// Size of the largest bucket.
    pub(crate) max_bucket: usize,
}

impl PointIndex {
    /// Append one pattern-matched element under its key, maintaining counts.
    pub(crate) fn push(&mut self, key: Value, element: Value) {
        let bucket = self.buckets.entry(key).or_default();
        bucket.push(element);
        self.max_bucket = self.max_bucket.max(bucket.len());
        self.rows += 1;
    }

    /// Estimated resident bytes: a shallow per-row and per-bucket cost.
    /// Values are `Arc`-shared with the source bag, so the dominant footprint
    /// is map/vec structure, not payload.
    pub(crate) fn approx_bytes(&self) -> u64 {
        (self.rows as u64) * 72 + (self.buckets.len() as u64) * 96 + 128
    }
}

/// Identity of one index: the generator's source expression and pattern plus
/// the filtered variable names (in filter order, duplicates kept).
pub(crate) type IndexKey = (Expr, Pattern, Vec<String>);

#[derive(Debug)]
struct IndexEntry {
    /// Provider version the index was built (or last refreshed) at.
    version: u64,
    /// Source-bag length at build time: an append-only provider refreshes by
    /// indexing only `bag[scanned..]`.
    scanned: usize,
    index: Arc<PointIndex>,
}

/// A bounded, version-guarded store of point-lookup indexes shared across
/// plans and (re)planning rounds. See the module docs for the design.
///
/// All methods take `&self`; the store is internally locked and may be shared
/// across threads behind an `Arc`.
#[derive(Debug)]
pub struct IndexStore {
    entries: RwLock<LruMap<IndexKey, IndexEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    builds: AtomicU64,
    refreshes: AtomicU64,
}

fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poison| poison.into_inner())
}

fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|poison| poison.into_inner())
}

impl IndexStore {
    /// A store with the default entry and byte bounds.
    pub fn new() -> Self {
        IndexStore::with_capacity_and_bytes(DEFAULT_INDEX_CAPACITY, DEFAULT_INDEX_BYTES)
    }

    /// A store holding at most `capacity` indexes (default byte budget).
    pub fn with_capacity(capacity: usize) -> Self {
        IndexStore::with_capacity_and_bytes(capacity, DEFAULT_INDEX_BYTES)
    }

    /// A store bounded by both index count and estimated total bytes.
    pub fn with_capacity_and_bytes(capacity: usize, byte_budget: u64) -> Self {
        IndexStore {
            entries: RwLock::new(LruMap::with_weight_budget(capacity, byte_budget)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
        }
    }

    /// Probes that found a current index.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Probes that found no usable index (absent or stale).
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Indexes built from a full source scan.
    pub fn build_count(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Stale indexes refreshed copy-on-write from an appended tail.
    pub fn refresh_count(&self) -> u64 {
        self.refreshes.load(Ordering::Relaxed)
    }

    /// Indexes evicted for capacity or byte budget.
    pub fn eviction_count(&self) -> u64 {
        read_lock(&self.entries).evictions()
    }

    /// Number of indexes currently held.
    pub fn len(&self) -> usize {
        read_lock(&self.entries).len()
    }

    /// Whether the store holds no indexes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated resident bytes across all held indexes.
    pub fn approx_bytes(&self) -> u64 {
        read_lock(&self.entries).total_weight()
    }

    /// Drop every index (counters are retained).
    pub fn invalidate_all(&self) {
        write_lock(&self.entries).clear();
    }

    /// A current index for `key` at `version`, counting a hit or miss.
    pub(crate) fn lookup(&self, key: &IndexKey, version: u64) -> Option<Arc<PointIndex>> {
        let guard = read_lock(&self.entries);
        match guard.get(key) {
            Some(entry) if entry.version == version => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.index))
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// A stale entry usable for copy-on-write refresh: the index plus the
    /// source-bag length it covered. Does not count as a hit or miss (the
    /// preceding [`IndexStore::lookup`] already counted the miss).
    pub(crate) fn stale(&self, key: &IndexKey) -> Option<(usize, Arc<PointIndex>)> {
        let guard = read_lock(&self.entries);
        guard
            .get(key)
            .map(|entry| (entry.scanned, Arc::clone(&entry.index)))
    }

    /// Store a freshly built or refreshed index, weighted by estimated bytes.
    pub(crate) fn store(
        &self,
        key: IndexKey,
        version: u64,
        scanned: usize,
        index: Arc<PointIndex>,
        refreshed: bool,
    ) {
        if refreshed {
            self.refreshes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.builds.fetch_add(1, Ordering::Relaxed);
        }
        let weight = index.approx_bytes();
        write_lock(&self.entries).insert_weighted(
            key,
            IndexEntry {
                version,
                scanned,
                index,
            },
            weight,
        );
    }
}

impl Default for IndexStore {
    fn default() -> Self {
        IndexStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Pattern;

    fn key(n: &str) -> IndexKey {
        (
            Expr::scheme([n]),
            Pattern::Var("x".into()),
            vec!["x".into()],
        )
    }

    fn sample_index(rows: usize) -> Arc<PointIndex> {
        let mut idx = PointIndex::default();
        for i in 0..rows {
            idx.push(Value::Int(i as i64 % 3), Value::Int(i as i64));
        }
        Arc::new(idx)
    }

    #[test]
    fn lookup_is_version_guarded() {
        let store = IndexStore::new();
        store.store(key("a"), 7, 10, sample_index(10), false);
        assert!(store.lookup(&key("a"), 7).is_some());
        assert!(store.lookup(&key("a"), 8).is_none());
        assert_eq!(store.hit_count(), 1);
        assert_eq!(store.miss_count(), 1);
        assert_eq!(store.build_count(), 1);
    }

    #[test]
    fn stale_entries_remain_reachable_for_refresh() {
        let store = IndexStore::new();
        store.store(key("a"), 7, 10, sample_index(10), false);
        assert!(store.lookup(&key("a"), 8).is_none());
        let (scanned, index) = store.stale(&key("a")).expect("stale entry kept");
        assert_eq!(scanned, 10);
        assert_eq!(index.rows, 10);
        store.store(key("a"), 8, 12, sample_index(12), true);
        assert_eq!(store.refresh_count(), 1);
        assert_eq!(store.lookup(&key("a"), 8).unwrap().rows, 12);
    }

    #[test]
    fn byte_budget_bounds_the_store() {
        // Each sample index weighs ~1k bytes; a 2.5k budget holds two.
        let store = IndexStore::with_capacity_and_bytes(16, 2_500);
        store.store(key("a"), 1, 9, sample_index(9), false);
        store.store(key("b"), 1, 9, sample_index(9), false);
        store.store(key("c"), 1, 9, sample_index(9), false);
        assert!(store.len() <= 2);
        assert!(store.eviction_count() >= 1);
        assert!(store.approx_bytes() <= 2_500);
    }

    #[test]
    fn invalidate_all_drops_entries() {
        let store = IndexStore::new();
        store.store(key("a"), 1, 4, sample_index(4), false);
        store.invalidate_all();
        assert!(store.is_empty());
        assert_eq!(store.approx_bytes(), 0);
    }
}
