//! # IQL — a functional, comprehension-based query language
//!
//! IQL is the query language that accompanies every schema transformation in the
//! AutoMed-style integration substrate and is also the language in which dataspace
//! queries are posed against federated, intersection and global schemas.
//!
//! The concrete syntax follows the paper:
//!
//! ```text
//! [{'PEDRO', k, x} | {k, x} <- <<protein, accession_num>>]
//! ```
//!
//! is a *comprehension*: the expression left of `|` builds a new collection element for
//! every binding produced by the generators and filters on the right. Collections are
//! **bags** (duplicates are retained), matching the paper's default bag-union semantics
//! for integrated extents. `<<t>>` / `<<t, c>>` are *scheme references* naming schema
//! objects whose extents are supplied by an [`ExtentProvider`]. `Range q_l q_u`, `Void`
//! and `Any` express the lower/upper bound queries used by `extend`/`contract`
//! transformations.
//!
//! ## Crate layout
//!
//! * [`ast`] / [`parser`] / [`lexer`] — surface syntax; [`Expr`] implements
//!   `Hash`/`Eq` so expressions can key caches directly, and `?name`
//!   placeholders ([`Expr::Param`]) keep one expression per query *shape*
//!   across parameter bindings;
//! * [`value`] — runtime values and bag algebra;
//! * [`env`](mod@env) — lexical environments and the [`Params`] binding sets
//!   prepared queries execute under;
//! * [`eval`] — the evaluator, parameterised by an [`ExtentProvider`]: hash-join
//!   planning, join-graph reordering of whole generator chains, parallel extent
//!   fetch, and the LRU-bounded [`PlanCache`] with persisted join-key histograms;
//! * [`bushy`] — the cost-based bushy join enumerator (DPsize over connected
//!   subgraphs) behind [`JoinStrategy::Bushy`] plans;
//! * [`fetch`] — the process-wide [`FetchPool`] semaphore budgeting every fetch
//!   fan-out in the process;
//! * [`index`] — the LRU/byte-bounded [`IndexStore`] of secondary point-lookup
//!   indexes serving prepared `var = ?param` filters as O(1) probes;
//! * [`lru`] — the bounded [`lru::LruMap`] behind the engine's memos;
//! * [`builtins`] — the built-in function library (`count`, `sum`, `distinct`, …);
//! * [`rewrite`] — query rewriting utilities used by GAV unfolding and pathway
//!   reformulation (scheme substitution, renaming, free-scheme collection);
//! * [`pretty`] — a pretty-printer that round-trips through the parser.
//!
//! ## Quick example
//!
//! ```
//! use iql::{parse, eval::Evaluator, value::{Bag, Value}, MapExtents};
//!
//! let mut extents = MapExtents::new();
//! extents.insert_pairs("protein,accession_num", vec![(1, "P100"), (2, "P200")]);
//!
//! let q = parse("[x | {k, x} <- <<protein, accession_num>>; k = 2]").unwrap();
//! let result = Evaluator::new(&extents).eval_closed(&q).unwrap();
//! assert_eq!(result, Value::Bag(Bag::from_values(vec![Value::str("P200")])));
//! ```

pub mod ast;
pub mod builtins;
pub mod bushy;
pub mod env;
pub mod error;
pub mod eval;
pub mod fetch;
pub mod index;
pub mod lexer;
pub mod lru;
pub mod parser;
pub mod physical;
pub mod plan;
pub mod pretty;
pub mod rewrite;
pub mod token;
pub mod value;

pub use ast::{BinOp, Expr, Literal, Pattern, Qualifier, SchemeRef, UnOp};
pub use bushy::JoinTree;
pub use env::Params;
pub use error::{EvalError, ParseError};
pub use eval::{
    Evaluator, ExtentProvider, JoinStats, JoinStrategy, KeyHistogram, PlanCache, SnapshotId,
    StandingPlan, StepKind, StepProbe,
};
pub use fetch::FetchPool;
pub use index::IndexStore;
pub use physical::{EngineStats, ExecEngine, BATCH_SIZE};
pub use value::{Bag, Value};

use std::collections::BTreeMap;
use std::sync::Arc;

/// Parse an IQL expression from its surface syntax.
pub fn parse(input: &str) -> Result<Expr, ParseError> {
    parser::Parser::new(input)?.parse_expr_complete()
}

/// A simple in-memory [`ExtentProvider`] backed by a map from scheme keys to bags.
///
/// Scheme keys are the comma-joined scheme parts, e.g. `"protein,accession_num"` for
/// `⟨⟨protein, accession_num⟩⟩`. Primarily useful in tests, examples and documentation;
/// the integration layers provide richer providers that pull extents from wrapped data
/// sources through transformation pathways. Extents are stored behind `Arc` so lookups
/// hand out shared bags without copying.
#[derive(Debug, Clone, Default)]
pub struct MapExtents {
    extents: BTreeMap<String, Arc<Bag>>,
    /// Bumped on every mutation so attached [`PlanCache`]s invalidate (see
    /// [`ExtentProvider::version`]).
    version: u64,
}

impl MapExtents {
    /// Create an empty provider.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a bag for the given scheme key (comma-joined parts).
    pub fn insert(&mut self, scheme_key: impl Into<String>, bag: Bag) {
        self.extents
            .insert(normalise_key(&scheme_key.into()), Arc::new(bag));
        self.version += 1;
    }

    /// Convenience: insert a bag of `{key, value}` pairs for a column-like scheme.
    pub fn insert_pairs(&mut self, scheme_key: impl Into<String>, pairs: Vec<(i64, &str)>) {
        let bag = Bag::from_values(
            pairs
                .into_iter()
                .map(|(k, v)| Value::pair(Value::Int(k), Value::str(v)))
                .collect(),
        );
        self.insert(scheme_key, bag);
    }

    /// Convenience: insert a bag of scalar keys for a table-like scheme.
    pub fn insert_keys(&mut self, scheme_key: impl Into<String>, keys: Vec<i64>) {
        let bag = Bag::from_values(keys.into_iter().map(Value::Int).collect());
        self.insert(scheme_key, bag);
    }

    /// Number of schemes with an extent.
    pub fn len(&self) -> usize {
        self.extents.len()
    }

    /// Whether the provider has no extents at all.
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }
}

fn normalise_key(key: &str) -> String {
    key.split(',')
        .map(|p| p.trim().to_string())
        .collect::<Vec<_>>()
        .join(",")
}

impl ExtentProvider for MapExtents {
    fn extent(&self, scheme: &SchemeRef) -> Result<Arc<Bag>, EvalError> {
        let key = scheme.key();
        self.extents
            .get(&key)
            .cloned()
            .ok_or(EvalError::UnknownScheme(scheme.clone()))
    }

    fn version(&self) -> u64 {
        self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_extents_normalises_keys() {
        let mut m = MapExtents::new();
        m.insert_keys("protein , accession_num", vec![1]);
        let q = parse("[k | k <- <<protein,accession_num>>]").unwrap();
        let v = Evaluator::new(&m).eval_closed(&q).unwrap();
        assert_eq!(v.expect_bag().unwrap().len(), 1);
    }

    #[test]
    fn unknown_scheme_is_an_error() {
        let m = MapExtents::new();
        let q = parse("[k | k <- <<missing>>]").unwrap();
        assert!(matches!(
            Evaluator::new(&m).eval_closed(&q),
            Err(EvalError::UnknownScheme(_))
        ));
    }
}
