//! Lexical environments, query-parameter bindings and pattern matching.

use crate::ast::{Literal, Pattern};
use crate::error::EvalError;
use crate::value::Value;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Named query-parameter bindings: the values a prepared query's `?name`
/// placeholders take for one execution.
///
/// Parameters are ordinary runtime [`Value`]s, so any value the language can
/// produce can be bound — including bags (e.g. the accession *group* of the
/// case study's Q2, probed with `member(?group, x)`). Binding is by name;
/// binding the same name again replaces the previous value.
///
/// ```
/// use iql::{Params, Value};
///
/// let params = Params::new()
///     .with("accession", "ACC00001")
///     .with("limit", 10);
/// assert_eq!(params.get("accession"), Some(&Value::str("ACC00001")));
/// assert_eq!(params.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct Params {
    map: BTreeMap<String, Value>,
}

impl Params {
    /// An empty binding set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style binding: returns the set with `name` bound to `value`.
    pub fn with(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.set(name, value);
        self
    }

    /// Bind `name` to `value`, replacing any previous binding.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Value>) {
        self.map.insert(name.into(), value.into());
    }

    /// The value bound to `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.map.get(name)
    }

    /// The bound names, in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.map.keys().map(String::as_str)
    }

    /// Number of bound names.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no parameter is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl<N: Into<String>, V: Into<Value>> FromIterator<(N, V)> for Params {
    fn from_iter<T: IntoIterator<Item = (N, V)>>(iter: T) -> Self {
        let mut params = Params::new();
        for (name, value) in iter {
            params.set(name, value);
        }
        params
    }
}

/// A lexical environment mapping variable names to values.
///
/// Implemented as a persistent scope chain: each binding is a small frame holding one
/// `(name, value)` pair and an `Arc` pointer to its parent. Cloning an environment is
/// O(1) (it copies the head pointer), and binding a generator variable is O(1) (it
/// prepends a frame) — the evaluator clones an environment per generated row, so this
/// is the difference between O(1) and O(bindings · log bindings) per row. Lookup walks
/// the chain innermost-first, which also gives shadowing for free. Comprehension
/// environments hold a handful of variables, so the linear walk beats a tree.
/// Query parameters live beside the scope chain, not in it: a `?name`
/// placeholder can never be shadowed by a generator binding, and attaching a
/// whole binding set is one `Arc` clone regardless of how many parameters it
/// holds.
#[derive(Debug, Clone, Default)]
pub struct Env {
    head: Option<Arc<Frame>>,
    params: Option<Arc<Params>>,
}

#[derive(Debug)]
struct Frame {
    name: String,
    value: Value,
    parent: Option<Arc<Frame>>,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a variable (innermost binding wins).
    pub fn get(&self, name: &str) -> Option<&Value> {
        let mut frame = self.head.as_deref();
        while let Some(f) = frame {
            if f.name == name {
                return Some(&f.value);
            }
            frame = f.parent.as_deref();
        }
        None
    }

    /// Bind a variable, shadowing any previous binding. O(1): prepends a frame.
    pub fn bind(&mut self, name: impl Into<String>, value: Value) {
        self.head = Some(Arc::new(Frame {
            name: name.into(),
            value,
            parent: self.head.take(),
        }));
    }

    /// A copy of this environment with an extra binding. O(1).
    pub fn with(&self, name: impl Into<String>, value: Value) -> Env {
        let mut e = self.clone();
        e.bind(name, value);
        e
    }

    /// A copy of this environment carrying the given query-parameter bindings
    /// (replacing any previously attached set). O(1) per later clone: the set
    /// is shared behind an `Arc`.
    pub fn with_params(&self, params: Params) -> Env {
        let mut e = self.clone();
        e.params = Some(Arc::new(params));
        e
    }

    /// The value bound to query parameter `?name`, if any.
    pub fn param(&self, name: &str) -> Option<&Value> {
        self.params.as_deref()?.get(name)
    }

    /// Names bound in this environment, in sorted order (shadowed duplicates
    /// appear once).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        let mut names = BTreeSet::new();
        let mut frame = self.head.as_deref();
        while let Some(f) = frame {
            names.insert(f.name.as_str());
            frame = f.parent.as_deref();
        }
        names.into_iter()
    }

    /// Number of distinct bound names.
    pub fn len(&self) -> usize {
        self.names().count()
    }

    /// Whether the environment is empty.
    pub fn is_empty(&self) -> bool {
        self.head.is_none()
    }

    /// The visible bindings as a map (innermost binding per name).
    fn flatten(&self) -> BTreeMap<&str, &Value> {
        let mut map = BTreeMap::new();
        let mut frame = self.head.as_deref();
        while let Some(f) = frame {
            map.entry(f.name.as_str()).or_insert(&f.value);
            frame = f.parent.as_deref();
        }
        map
    }
}

impl PartialEq for Env {
    /// Environments compare by visible bindings (and attached parameters), not
    /// by chain structure.
    fn eq(&self, other: &Self) -> bool {
        self.flatten() == other.flatten()
            && self.params.as_deref().unwrap_or(&Params::new())
                == other.params.as_deref().unwrap_or(&Params::new())
    }
}

/// Attempt to match `value` against `pattern`, extending `env` with the bindings.
///
/// Returns `Ok(true)` if the pattern matches, `Ok(false)` if it does not (e.g. a
/// literal pattern over a different value — the element is simply skipped by the
/// comprehension), and `Err` only for structural mismatches that indicate a programming
/// error (destructuring a non-tuple with a tuple pattern of different shape is treated
/// as a non-match, not an error, to follow comprehension filtering semantics).
pub fn match_pattern(pattern: &Pattern, value: &Value, env: &mut Env) -> Result<bool, EvalError> {
    match pattern {
        Pattern::Wildcard => Ok(true),
        Pattern::Var(name) => {
            env.bind(name.clone(), value.clone());
            Ok(true)
        }
        Pattern::Lit(lit) => Ok(&literal_value(lit) == value),
        Pattern::Tuple(parts) => match value {
            Value::Tuple(items) if items.len() == parts.len() => {
                for (p, v) in parts.iter().zip(items.iter()) {
                    if !match_pattern(p, v, env)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            _ => Ok(false),
        },
    }
}

/// Convert a literal AST node to its runtime value.
pub fn literal_value(lit: &Literal) -> Value {
    match lit {
        Literal::Int(i) => Value::Int(*i),
        Literal::Float(f) => Value::Float(*f),
        Literal::Str(s) => Value::str(s.as_str()),
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Null => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_pattern_binds() {
        let mut env = Env::new();
        assert!(match_pattern(&Pattern::Var("x".into()), &Value::Int(3), &mut env).unwrap());
        assert_eq!(env.get("x"), Some(&Value::Int(3)));
    }

    #[test]
    fn tuple_pattern_destructures() {
        let mut env = Env::new();
        let pat = Pattern::Tuple(vec![Pattern::Var("k".into()), Pattern::Var("v".into())]);
        let val = Value::pair(Value::Int(1), Value::str("P100"));
        assert!(match_pattern(&pat, &val, &mut env).unwrap());
        assert_eq!(env.get("k"), Some(&Value::Int(1)));
        assert_eq!(env.get("v"), Some(&Value::str("P100")));
    }

    #[test]
    fn arity_mismatch_is_a_non_match() {
        let mut env = Env::new();
        let pat = Pattern::Tuple(vec![Pattern::Var("k".into()), Pattern::Var("v".into())]);
        assert!(!match_pattern(&pat, &Value::tuple(vec![Value::Int(1)]), &mut env).unwrap());
        assert!(!match_pattern(&pat, &Value::Int(1), &mut env).unwrap());
    }

    #[test]
    fn literal_pattern_filters() {
        let mut env = Env::new();
        let pat = Pattern::Tuple(vec![
            Pattern::Lit(Literal::Str("PEDRO".into())),
            Pattern::Var("k".into()),
        ]);
        let yes = Value::pair(Value::str("PEDRO"), Value::Int(7));
        let no = Value::pair(Value::str("gpmDB"), Value::Int(7));
        assert!(match_pattern(&pat, &yes, &mut env).unwrap());
        assert!(!match_pattern(&pat, &no, &mut env).unwrap());
    }

    #[test]
    fn with_does_not_mutate_original() {
        let env = Env::new();
        let env2 = env.with("x", Value::Int(1));
        assert!(env.get("x").is_none());
        assert_eq!(env2.get("x"), Some(&Value::Int(1)));
        assert_eq!(env2.len(), 1);
        assert!(env.is_empty());
    }

    #[test]
    fn shadowing_and_distinct_len() {
        let mut env = Env::new();
        env.bind("x", Value::Int(1));
        env.bind("y", Value::Int(2));
        env.bind("x", Value::Int(3));
        assert_eq!(env.get("x"), Some(&Value::Int(3)));
        assert_eq!(env.len(), 2);
        assert_eq!(env.names().collect::<Vec<_>>(), vec!["x", "y"]);
    }

    #[test]
    fn equality_sees_through_chain_structure() {
        let mut a = Env::new();
        a.bind("x", Value::Int(1));
        a.bind("x", Value::Int(2));
        let mut b = Env::new();
        b.bind("x", Value::Int(2));
        assert_eq!(a, b);
        let c = b.with("y", Value::Int(9));
        assert_ne!(b, c);
    }

    #[test]
    fn clones_share_parents_cheaply() {
        let mut base = Env::new();
        base.bind("shared", Value::Int(1));
        // Two children extend the same parent without copying it.
        let left = base.with("l", Value::Int(2));
        let right = base.with("r", Value::Int(3));
        assert_eq!(left.get("shared"), Some(&Value::Int(1)));
        assert_eq!(right.get("shared"), Some(&Value::Int(1)));
        assert!(left.get("r").is_none());
        assert!(right.get("l").is_none());
    }
}
