//! Lexical environments and pattern matching.

use crate::ast::{Literal, Pattern};
use crate::error::EvalError;
use crate::value::Value;
use std::collections::BTreeMap;

/// A lexical environment mapping variable names to values.
///
/// Environments are small (comprehension-scoped), so a persistent chain of clones is
/// simpler and fast enough; the evaluator clones an environment per generator binding.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Env {
    bindings: BTreeMap<String, Value>,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a variable.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.bindings.get(name)
    }

    /// Bind a variable, shadowing any previous binding.
    pub fn bind(&mut self, name: impl Into<String>, value: Value) {
        self.bindings.insert(name.into(), value);
    }

    /// A copy of this environment with an extra binding.
    pub fn with(&self, name: impl Into<String>, value: Value) -> Env {
        let mut e = self.clone();
        e.bind(name, value);
        e
    }

    /// Names bound in this environment, in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.bindings.keys().map(String::as_str)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether the environment is empty.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

/// Attempt to match `value` against `pattern`, extending `env` with the bindings.
///
/// Returns `Ok(true)` if the pattern matches, `Ok(false)` if it does not (e.g. a
/// literal pattern over a different value — the element is simply skipped by the
/// comprehension), and `Err` only for structural mismatches that indicate a programming
/// error (destructuring a non-tuple with a tuple pattern of different shape is treated
/// as a non-match, not an error, to follow comprehension filtering semantics).
pub fn match_pattern(pattern: &Pattern, value: &Value, env: &mut Env) -> Result<bool, EvalError> {
    match pattern {
        Pattern::Wildcard => Ok(true),
        Pattern::Var(name) => {
            env.bind(name.clone(), value.clone());
            Ok(true)
        }
        Pattern::Lit(lit) => Ok(&literal_value(lit) == value),
        Pattern::Tuple(parts) => match value {
            Value::Tuple(items) if items.len() == parts.len() => {
                for (p, v) in parts.iter().zip(items.iter()) {
                    if !match_pattern(p, v, env)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            _ => Ok(false),
        },
    }
}

/// Convert a literal AST node to its runtime value.
pub fn literal_value(lit: &Literal) -> Value {
    match lit {
        Literal::Int(i) => Value::Int(*i),
        Literal::Float(f) => Value::Float(*f),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Null => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_pattern_binds() {
        let mut env = Env::new();
        assert!(match_pattern(&Pattern::Var("x".into()), &Value::Int(3), &mut env).unwrap());
        assert_eq!(env.get("x"), Some(&Value::Int(3)));
    }

    #[test]
    fn tuple_pattern_destructures() {
        let mut env = Env::new();
        let pat = Pattern::Tuple(vec![Pattern::Var("k".into()), Pattern::Var("v".into())]);
        let val = Value::pair(Value::Int(1), Value::str("P100"));
        assert!(match_pattern(&pat, &val, &mut env).unwrap());
        assert_eq!(env.get("k"), Some(&Value::Int(1)));
        assert_eq!(env.get("v"), Some(&Value::str("P100")));
    }

    #[test]
    fn arity_mismatch_is_a_non_match() {
        let mut env = Env::new();
        let pat = Pattern::Tuple(vec![Pattern::Var("k".into()), Pattern::Var("v".into())]);
        assert!(!match_pattern(&pat, &Value::Tuple(vec![Value::Int(1)]), &mut env).unwrap());
        assert!(!match_pattern(&pat, &Value::Int(1), &mut env).unwrap());
    }

    #[test]
    fn literal_pattern_filters() {
        let mut env = Env::new();
        let pat = Pattern::Tuple(vec![
            Pattern::Lit(Literal::Str("PEDRO".into())),
            Pattern::Var("k".into()),
        ]);
        let yes = Value::pair(Value::str("PEDRO"), Value::Int(7));
        let no = Value::pair(Value::str("gpmDB"), Value::Int(7));
        assert!(match_pattern(&pat, &yes, &mut env).unwrap());
        assert!(!match_pattern(&pat, &no, &mut env).unwrap());
    }

    #[test]
    fn with_does_not_mutate_original() {
        let env = Env::new();
        let env2 = env.with("x", Value::Int(1));
        assert!(env.get("x").is_none());
        assert_eq!(env2.get("x"), Some(&Value::Int(1)));
        assert_eq!(env2.len(), 1);
        assert!(env.is_empty());
    }
}
