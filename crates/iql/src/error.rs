//! Parse- and evaluation-time errors.

use crate::ast::SchemeRef;
use std::fmt;

/// An error produced while lexing or parsing IQL surface syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset into the input at which the problem was detected.
    pub position: usize,
}

impl ParseError {
    /// Create a parse error at the given byte offset.
    pub fn new(message: impl Into<String>, position: usize) -> Self {
        ParseError {
            message: message.into(),
            position,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// An error produced while evaluating an IQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A variable was referenced that is not bound in the environment.
    UnboundVariable(String),
    /// A query parameter `?name` was evaluated without a binding for it in the
    /// execution's parameter set.
    UnboundParam(String),
    /// A scheme reference could not be resolved to an extent.
    UnknownScheme(SchemeRef),
    /// A built-in function was called that does not exist.
    UnknownFunction(String),
    /// A built-in function was called with the wrong number of arguments.
    ArityError {
        function: String,
        expected: usize,
        found: usize,
    },
    /// An operator or function was applied to values of an unsupported type.
    TypeError { context: String, found: String },
    /// A tuple pattern did not match the shape of the value being destructured.
    PatternMismatch { pattern: String, value: String },
    /// Division by zero.
    DivisionByZero,
    /// An aggregate over an empty bag that has no defined result (e.g. `max []`).
    EmptyAggregate(String),
    /// Evaluation of an `Any`-bounded expression was requested; `Any` has no
    /// materialisable extent.
    UnboundedExtent,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(v) => write!(f, "unbound variable `{v}`"),
            EvalError::UnboundParam(p) => write!(f, "no binding for query parameter `?{p}`"),
            EvalError::UnknownScheme(s) => write!(f, "no extent for scheme {s}"),
            EvalError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            EvalError::ArityError {
                function,
                expected,
                found,
            } => write!(
                f,
                "function `{function}` expects {expected} argument(s), got {found}"
            ),
            EvalError::TypeError { context, found } => {
                write!(f, "type error in {context}: unexpected {found}")
            }
            EvalError::PatternMismatch { pattern, value } => {
                write!(f, "pattern `{pattern}` does not match value {value}")
            }
            EvalError::DivisionByZero => write!(f, "division by zero"),
            EvalError::EmptyAggregate(func) => {
                write!(f, "aggregate `{func}` applied to an empty bag")
            }
            EvalError::UnboundedExtent => {
                write!(f, "cannot materialise the extent of `Any`")
            }
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_display() {
        let e = ParseError::new("unexpected token", 12);
        assert!(e.to_string().contains("byte 12"));
    }

    #[test]
    fn eval_error_display() {
        let e = EvalError::ArityError {
            function: "count".into(),
            expected: 1,
            found: 2,
        };
        assert!(e.to_string().contains("count"));
        assert!(EvalError::DivisionByZero.to_string().contains("zero"));
    }
}
