//! The IQL evaluator.
//!
//! # Comprehension planning
//!
//! Comprehensions are evaluated through a small per-comprehension plan rather than
//! textbook nested recursion. The planner recognises the **equi-join shape**
//! `…; p1 <- e1; p2 <- e2; x = y; …` that GAV unfolding and LAV reverse queries
//! produce when two source extents are joined on a key.
//!
//! When a generator is immediately followed by one or more `Filter(Eq(Var, Var))`
//! qualifiers whose two variables split across "bound by this generator's pattern"
//! and "bound earlier / outer", and the generator's source expression is
//! *independent* of all variables bound earlier in the comprehension (checked with
//! [`crate::rewrite::free_vars`]), the planner evaluates that source **once**,
//! hash-indexes its elements by the (composite) join key, and turns the generator +
//! filter run into a hash-join step: each outer row probes the index in O(1) expected
//! instead of scanning the whole inner extent. An n×m nested loop becomes
//! O(n + m + output). Multi-filter runs matter in practice: the GAV rewrites tag
//! every global extent with its source, so the paper's queries join on
//! `s2 = s; k2 = k` pairs, and a composite `{source, key}` hash key is what makes
//! those joins selective.
//!
//! # Parallel extent fetch
//!
//! The sources the planner decides to evaluate at plan time (join build sides, and
//! the leading generator of a reorderable chain) are independent of each other
//! by construction, so when there are two or more of them they are fetched on
//! scoped worker threads ([`std::thread::scope`]) rather than sequentially. This
//! is why [`ExtentProvider`] requires [`Sync`]: the evaluator shares the provider
//! across those worker threads. Worker threads are budgeted by the process-wide
//! [`crate::FetchPool`] semaphore — nested fan-outs (batched queries resolving
//! virtual extents that prefetch join sides) share one global bound instead of
//! multiplying per-call caps, and any share the pool cannot cover runs inline on
//! the caller. Results are stitched back in qualifier order, so evaluation
//! (including which error surfaces first) stays deterministic.
//! [`Evaluator::without_parallel_fetch`] forces sequential fetching.
//!
//! # Statistics-driven join ordering
//!
//! The planner reorders the **leading generator chain** — the first plain
//! generator plus the run of fused equi-join generators directly after it whose
//! join keys all resolve to chain generators. For a chain of exactly two, the
//! pair rule applies: both extent cardinalities are collected and, when the
//! *outer* extent is the smaller one, the hash index is built on it instead —
//! the textbook "smallest extent builds the hash side" rule. Key selectivity is
//! estimated from the hash-index bucket histogram (`probe rows × build rows /
//! distinct keys`); if the estimated join output is disproportionate to the
//! input sizes the reorder is abandoned (the final sort would dominate) and the
//! textual orientation is kept.
//!
//! Chains of three or more go through the **join graph**: each equi-filter pair
//! becomes an edge between the generator binding its probe variable and the
//! fused generator that owns the filter.
//!
//! # Bushy join enumeration
//!
//! Chains of three to [`crate::bushy::MAX_DP_RELATIONS`] generators are planned
//! by the exhaustive enumerator in [`crate::bushy`]: a DPsize/DPccp-style
//! dynamic program over the connected subsets of the join graph that considers
//! **every tree shape — bushy included**, scoring each join node by its hash
//! build side plus estimated output, with edge selectivities
//! (`1 / max(distinct keys)`) drawn from the **persisted per-extent key
//! histograms** (see [`PlanCache`]) so planning over memoised extents needs no
//! extra pass over the data. The winning tree executes as recursive hash joins
//! (the `BushyJoin` plan step): leaves are the matched extents, each internal node
//! hash-indexes its smaller input on the composite key of every equi-predicate
//! crossing the cut, and one final positional sort restores nested-loop output
//! order. [`Evaluator::explain`] reports the shape via
//! [`JoinStrategy::Bushy`], one entry per join node in execution (post-)order.
//!
//! Chains longer than the DP bound — or chains the enumerator refuses (an
//! estimated intermediate of the winning tree past the cap) — fall back to
//! the **greedy** reorder: start
//! from the smallest extent, repeatedly join in the smallest remaining
//! generator connected to the joined set, hash-indexing whichever side of each
//! edge join is smaller ([`JoinStrategy::Multiway`]). A greedy step estimate
//! past the cap, or a disconnected join graph, abandons the whole-chain
//! reorder and falls back to the pair rule. [`Evaluator::without_bushy`]
//! disables the enumerator (greedy only) — the differential harness and the
//! `table1_star_join` bench group compare the two.
//!
//! Every reordered shape **restores the nested-loop output order** with a final
//! sort on the original bag positions (in textual generator order) — planned,
//! reordered and naive evaluation produce identical bags in identical order.
//! [`Evaluator::without_reorder`] disables reordering; [`Evaluator::explain`]
//! exposes the per-join statistics ([`JoinStats`]) the decisions were based on.
//!
//! # Plan caching
//!
//! Planning (and in particular evaluating + hash-indexing the build sides) is
//! memoised per **expression identity** when a [`PlanCache`] is attached with
//! [`Evaluator::with_plan_cache`]. The cache key is the comprehension expression
//! itself ([`Expr`] implements `Hash`/`Eq`, so lookups never pretty-print); an
//! entry is only stored when every plan-time-evaluated source is a *closed*
//! expression (no free variables), so a cached plan can never smuggle
//! environment-dependent data between evaluations. Entries are guarded by
//! [`ExtentProvider::version`]: any provider mutation bumps the version and stale
//! plans are transparently rebuilt. The cache is **bounded** — least recently
//! used plans are evicted past [`PlanCache::capacity`] — so long-lived services
//! can keep one cache for the life of the process. Pay-as-you-go workloads that
//! re-run the same priority queries after every integration iteration therefore
//! skip planning and index building entirely on re-runs.
//!
//! # Query parameters
//!
//! `?name` placeholders ([`Expr::Param`]) make plans **shape-stable**: the
//! expression — and therefore the plan-cache key — is the same for every
//! binding, so one prepared query shares one plan (including its built hash
//! indexes, which key on join columns, never on parameter values) across all
//! executions. Parameters resolve at execution time through the
//! [`crate::env::Params`] set attached to the environment
//! ([`crate::env::Env::with_params`]); evaluating an unbound one fails with
//! [`EvalError::UnboundParam`]. To the planner a parameter is an opaque
//! non-constant: `x = ?p` filters never fuse into join keys, and a generator
//! *source* mentioning a parameter disqualifies its plan from the cache (and
//! its histogram from the persisted side-table), since plan-time evaluation
//! under one binding must not leak into executions under another.
//!
//! Everything that does not match the planned shapes — correlated generators (whose
//! source mentions earlier variables), non-equality filters, filters over
//! expressions rather than plain variables — falls back to exactly the nested-loop
//! semantics, and every planned step preserves nested-loop **output order** (outer
//! order first, inner source order within a key group), so planned and naive
//! evaluation produce identical bags, duplicates and all — with the one exception
//! of `NaN` join keys, where the filter's `=` (which treats `NaN` as equal to every
//! float, see [`crate::value`]) and the hash probe disagree; extents of wrapped
//! sources never contain `NaN`. [`Evaluator::with_nested_loops`] disables planning
//! entirely; the property-test suite uses it as the reference semantics, and the
//! benches use it to measure the planner's win.
//!
//! One deliberate strictness difference: a planned generator source is evaluated
//! when the plan is built, even if the rows that would reach it are filtered out
//! earlier (the naive evaluator only discovers errors — unknown scheme, `Any`
//! extent — in qualifiers it actually reaches). Queries over well-formed schemas
//! are unaffected.

use crate::ast::{BinOp, Expr, Pattern, Qualifier, SchemeRef, UnOp};
use crate::builtins;
use crate::bushy::{self, JoinTree};
use crate::env::{literal_value, match_pattern, Env};
use crate::error::EvalError;
use crate::fetch::FetchPool;
use crate::index::{IndexKey, IndexStore, PointIndex};
use crate::physical::{columnar, EngineStats, ExecEngine};
use crate::rewrite;
use crate::value::{Bag, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// The identifier of one consistent point in a provider's commit history.
///
/// [`ExtentProvider::version`] returns a `SnapshotId`: the storage layer
/// (`relational::storage`) assigns one per committed write batch, and every
/// version-guarded memo in the engine — the [`PlanCache`], the
/// [`crate::IndexStore`], key histograms, extent memos, subscription `synced`
/// stamps — pins to a snapshot id rather than an opaque counter. Kept as a
/// plain `u64` so pre-snapshot providers (and persisted stamps) remain
/// compatible.
pub type SnapshotId = u64;

/// A source of extents for scheme references.
///
/// The evaluator is agnostic about where extents come from: the `relational` crate
/// implements this for wrapped databases, the `automed` query processor implements it
/// for *virtual* global-schema objects by reformulating queries down to the sources,
/// and [`crate::MapExtents`] implements it for in-memory test fixtures.
///
/// Implementing the trait takes one method; a provider that computes extents on
/// the fly just returns a fresh bag per call:
///
/// ```
/// use iql::{Bag, Evaluator, ExtentProvider, SchemeRef, Value, parse};
/// use iql::error::EvalError;
/// use std::sync::Arc;
///
/// /// Serves `<<n>>` as the extent {0, 1, …, 9} for any scheme.
/// struct Tens;
///
/// impl ExtentProvider for Tens {
///     fn extent(&self, _scheme: &SchemeRef) -> Result<Arc<Bag>, EvalError> {
///         Ok(Arc::new(Bag::from_values((0..10).map(Value::Int).collect())))
///     }
/// }
///
/// let q = parse("count [k | k <- <<anything>>; k > 6]").unwrap();
/// assert_eq!(Evaluator::new(Tens).eval_closed(&q).unwrap(), Value::Int(3));
/// ```
///
/// Extents are returned as `Arc<Bag>` so providers can serve cached bags without deep
/// copies — the evaluator and all layered providers share one allocation per extent.
///
/// # The `Sync` contract
///
/// `ExtentProvider` requires [`Sync`]: the evaluator fetches independent generator
/// extents on scoped worker threads, and layered providers (the `automed` virtual
/// extent resolver) fan per-source contributions out the same way, so a provider
/// must tolerate concurrent `extent` calls from multiple threads. Providers that
/// memoise must use interior mutability that is safe under sharing (`RwLock`,
/// atomics — **not** `RefCell`). Two threads may race to compute the same extent;
/// that is allowed (both compute the same deterministic bag, last write wins) but a
/// provider must never hand out a torn or partially built bag.
pub trait ExtentProvider: Sync {
    /// Return the extent (a shared bag) of the schema object named by `scheme`.
    fn extent(&self, scheme: &SchemeRef) -> Result<Arc<Bag>, EvalError>;

    /// The snapshot the provider's data currently sits at, used to guard
    /// [`PlanCache`] entries (and every other version-stamped memo downstream).
    ///
    /// Since the storage layer grew MVCC snapshots, this stamp carries
    /// **snapshot-id semantics**: it identifies a consistent point in the
    /// provider's commit history, every committed write batch moves it to a new
    /// id, and a provider pinned to an immutable snapshot returns that
    /// snapshot's id for its whole lifetime. The original, weaker contract is
    /// unchanged and still sufficient for simple providers: any mutation that
    /// can change the result of *any* `extent` call must change the stamp
    /// (monotonically increasing counters are the easy way). Immutable
    /// providers can keep the default constant `0`. A [`PlanCache`] must only
    /// ever be shared between evaluators over the *same logical provider*: the
    /// stamp guards staleness within one provider's lifetime, not identity
    /// across different providers.
    fn version(&self) -> SnapshotId {
        0
    }

    /// Whether a plain scheme-reference `extent` call is expensive enough that the
    /// evaluator should overlap independent fetches on worker threads.
    ///
    /// Memoising in-memory providers (a wrapped database, a map of fixtures) answer
    /// in near-constant time, and a thread spawn would cost more than it saves —
    /// they keep the default `false`. Providers that *compute* extents by
    /// reformulating and evaluating queries (the `automed` virtual-extent resolver)
    /// return `true`. Sources that are compound expressions (not bare scheme
    /// references) are always fetched in parallel regardless of this hint.
    fn prefers_parallel_fetch(&self) -> bool {
        false
    }

    /// Whether every extent this provider serves only ever grows by appending
    /// at the tail: a mutation may push new elements onto the end of a bag but
    /// never reorders, removes, or rewrites existing positions.
    ///
    /// When `true`, version-stale derived structures (the point-lookup indexes
    /// of an [`crate::IndexStore`], the [`PlanCache`]'s key histograms) are
    /// refreshed copy-on-write from the appended tail instead of being rebuilt
    /// from scratch. The default `false` is always safe; answering `true` for
    /// a provider that ever mutates in place silently corrupts those
    /// structures. The relational store qualifies (inserts append to table and
    /// column extents); virtual extents do not (an insert into one member
    /// source lands mid-bag in the unioned global extent).
    fn extents_append_only(&self) -> bool {
        false
    }
}

/// Blanket implementation so `&P` can be used wherever a provider is expected.
impl<P: ExtentProvider + ?Sized> ExtentProvider for &P {
    fn extent(&self, scheme: &SchemeRef) -> Result<Arc<Bag>, EvalError> {
        (**self).extent(scheme)
    }

    fn version(&self) -> SnapshotId {
        (**self).version()
    }

    fn prefers_parallel_fetch(&self) -> bool {
        (**self).prefers_parallel_fetch()
    }

    fn extents_append_only(&self) -> bool {
        (**self).extents_append_only()
    }
}

/// An [`ExtentProvider`] with no extents at all; every scheme reference fails.
/// Useful for evaluating closed expressions (no scheme references).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoExtents;

impl ExtentProvider for NoExtents {
    fn extent(&self, scheme: &SchemeRef) -> Result<Arc<Bag>, EvalError> {
        Err(EvalError::UnknownScheme(scheme.clone()))
    }
}

pub use crate::plan::{
    JoinStats, JoinStrategy, KeyHistogram, PlanCache, StandingPlan, StepKind, StepProbe,
    DEFAULT_PLAN_CACHE_BYTES, DEFAULT_PLAN_CAPACITY, DEFAULT_REOPT_FACTOR,
};

pub(crate) use crate::plan::{
    ObservedSelectivities, Plan, PlanFeedback, PlanLookup, Step, MIN_FEEDBACK_ROWS,
};

/// Evaluates IQL expressions against an [`ExtentProvider`].
///
/// A fresh evaluator has every optimisation on: comprehension planning with
/// hash-join fusion, statistics-driven join(-graph) reordering, and parallel
/// extent fetch. Each can be disabled individually — the differential test
/// harness runs all configurations against the nested-loop reference and
/// requires identical bags in identical order.
///
/// ```
/// use iql::{parse, Evaluator, MapExtents, Value};
///
/// let mut extents = MapExtents::new();
/// extents.insert_pairs("protein,organism", vec![(1, "human"), (2, "mouse")]);
///
/// let q = parse("[o | {k, o} <- <<protein, organism>>; k = 2]").unwrap();
/// let v = Evaluator::new(&extents).eval_closed(&q).unwrap();
/// assert_eq!(v.expect_bag().unwrap().items(), &[Value::str("mouse")]);
///
/// // The nested-loop reference semantics (used by property tests and benches):
/// let naive = Evaluator::new(&extents).with_nested_loops().eval_closed(&q).unwrap();
/// assert_eq!(v, naive);
/// ```
///
/// Chains of three or more joined generators are planned as cost-based
/// **bushy** join trees; [`Evaluator::explain`] reports the chosen shape:
///
/// ```
/// use iql::env::Env;
/// use iql::{parse, Evaluator, JoinStrategy, MapExtents};
///
/// let mut extents = MapExtents::new();
/// extents.insert_pairs("hub,v", (0..60).map(|i| (i % 6, "h")).collect());
/// extents.insert_pairs("left,v", vec![(0, "l"), (1, "l2"), (2, "l3")]);
/// extents.insert_pairs("right,v", (0..12).map(|i| (i % 6, "r")).collect());
///
/// let q = parse(
///     "[{x, y, z} | {k1, x} <- <<hub, v>>; {k2, y} <- <<left, v>>; k2 = k1; \
///      {k3, z} <- <<right, v>>; k3 = k1]",
/// )
/// .unwrap();
/// let stats = Evaluator::new(&extents).explain(&q, &Env::new()).unwrap();
/// // One entry per join node of the tree; the last spans the whole chain.
/// let JoinStrategy::Bushy { tree } = &stats.last().unwrap().strategy else {
///     panic!("expected a bushy plan");
/// };
/// assert_eq!(tree.leaves(), vec![0, 1, 2]);
/// // The hub joins its selective satellite before the unselective one.
/// assert_eq!(tree.to_string(), "((0 ⋈ 1) ⋈ 2)");
/// ```
pub struct Evaluator<P> {
    provider: P,
    use_planner: bool,
    reorder: bool,
    bushy: bool,
    parallel: bool,
    use_index: bool,
    columnar: bool,
    plan_cache: Option<Arc<PlanCache>>,
    index_store: Option<Arc<IndexStore>>,
    step_probe: Option<Arc<StepProbe>>,
    engine_stats: Option<Arc<EngineStats>>,
    reopt_factor: f64,
}

/// When the estimated join output exceeds this multiple of the combined input
/// cardinalities, a reorder is abandoned: the order-restoring sort would dominate.
const REORDER_OUTPUT_CAP: f64 = 16.0;

/// Marker for "this generator not joined yet" in intermediate chain-join rows
/// (each row is one index per chain position into that generator's matched rows).
const UNSET: usize = usize::MAX;

/// A pre-planning classification of one or two fused qualifiers.
enum Slot<'q> {
    Filter(&'q Expr),
    Bind {
        pattern: &'q Pattern,
        value: &'q Expr,
    },
    Gen {
        pattern: &'q Pattern,
        source: &'q Expr,
    },
    Fused {
        pattern: &'q Pattern,
        source: &'q Expr,
        probe_vars: Vec<&'q str>,
        build_vars: Vec<&'q str>,
    },
}

/// Classify the qualifier list without evaluating anything: find the maximal
/// generator + equi-filter runs that can fuse into hash joins (see module docs).
fn analyse(qualifiers: &[Qualifier]) -> Vec<Slot<'_>> {
    let mut slots = Vec::with_capacity(qualifiers.len());
    let mut bound: BTreeSet<&str> = BTreeSet::new();
    let mut i = 0;
    while i < qualifiers.len() {
        match &qualifiers[i] {
            Qualifier::Filter(cond) => {
                slots.push(Slot::Filter(cond));
                i += 1;
            }
            Qualifier::Binding { pattern, value } => {
                slots.push(Slot::Bind { pattern, value });
                bound.extend(pattern.bound_vars());
                i += 1;
            }
            Qualifier::Generator { pattern, source } => {
                // Collect the maximal run of `x = y` filters directly after the
                // generator whose sides split across pattern/earlier vars; they
                // jointly form a (composite) equi-join key.
                let mut probe_vars: Vec<&str> = Vec::new();
                let mut build_vars: Vec<&str> = Vec::new();
                let mut j = i + 1;
                while let Some(Qualifier::Filter(cond)) = qualifiers.get(j) {
                    let Some((probe, build)) = equi_join_key(cond, pattern) else {
                        break;
                    };
                    probe_vars.push(probe);
                    build_vars.push(build);
                    j += 1;
                }
                // Fuse only when the join key actually varies per incoming row
                // (some probe var is bound by an *earlier qualifier of this
                // comprehension*). When every probe var already has its one value
                // in the outer environment — e.g. a correlated nested
                // comprehension re-planned per outer row — the "join" is a
                // single-key selection, and building an index to probe it once
                // costs more than the plain filtered scan it replaces.
                let varies = probe_vars.iter().any(|v| bound.contains(v));
                let independent = varies
                    && rewrite::free_vars(source)
                        .iter()
                        .all(|v| !bound.contains(v.as_str()));
                if independent {
                    slots.push(Slot::Fused {
                        pattern,
                        source,
                        probe_vars,
                        build_vars,
                    });
                    bound.extend(pattern.bound_vars());
                    i = j;
                } else {
                    slots.push(Slot::Gen { pattern, source });
                    bound.extend(pattern.bound_vars());
                    i += 1;
                }
            }
        }
    }
    slots
}

/// A maximal reorderable generator chain: the leading plain generator plus the
/// run of fused generators directly after it whose probe variables all resolve to
/// chain generators. The chain is the unit the join-graph reorder permutes.
struct Chain {
    /// Slot index of the leading plain generator.
    start: usize,
    /// Number of consecutive slots in the chain (1 leading `Gen` + fused runs).
    len: usize,
    /// The join-graph edges: one per equi-filter pair, connecting a fused
    /// generator to the chain generator that binds its probe variable.
    preds: Vec<ChainPred>,
}

/// A successful chain plan: the (single `MultiJoin`/`BushyJoin`) step list,
/// the per-edge-join statistics, and — for enumerated trees — the
/// actual-vs-estimated cardinality feedback driving adaptive re-optimisation.
struct ChainPlan {
    steps: Vec<Step>,
    stats: Vec<JoinStats>,
    feedback: Option<PlanFeedback>,
}

/// One generator's matched extent rows: original bag position, element, and the
/// pattern-bound environment used for join-key extraction.
type MatchedRows = Vec<(usize, Value, Env)>;

/// One equality edge of the chain's join graph. Positions index into the chain
/// (0 = the leading generator, in textual order).
#[derive(Debug, Clone)]
struct ChainPred {
    /// Chain position of the fused generator the equi-filter followed.
    later: usize,
    /// Chain position of the generator binding the probe variable — resolved to
    /// the *most recent* earlier binder, mirroring environment shadowing.
    earlier: usize,
    /// The variable bound by the later generator's pattern.
    later_var: String,
    /// The variable bound by the earlier generator's pattern.
    earlier_var: String,
}

/// Find the leading reorderable chain: the first binding slot must be a plain
/// generator (filters may precede it; a `let` disqualifies, because hoisted
/// evaluation could not see its comp-local bindings), followed by one or more
/// fused generators whose probe variables all resolve to chain patterns. Chains
/// of length two are planned by the pair planner; longer chains go through the
/// full join-graph reorder.
fn chain_candidate(slots: &[Slot<'_>]) -> Option<Chain> {
    let mut first_gen = None;
    for (i, slot) in slots.iter().enumerate() {
        match slot {
            Slot::Filter(_) => continue,
            Slot::Gen { .. } => {
                first_gen = Some(i);
                break;
            }
            _ => return None,
        }
    }
    let start = first_gen?;
    let Slot::Gen { pattern: p0, .. } = &slots[start] else {
        return None;
    };
    // Patterns of the chain members so far, in textual order (position 0 = p0).
    let mut patterns: Vec<&Pattern> = vec![p0];
    let mut preds: Vec<ChainPred> = Vec::new();
    let mut len = 1;
    'extend: while let Some(Slot::Fused {
        pattern,
        probe_vars,
        build_vars,
        ..
    }) = slots.get(start + len)
    {
        let later = patterns.len();
        let mut new_preds = Vec::with_capacity(probe_vars.len());
        for (probe, build) in probe_vars.iter().zip(build_vars) {
            // Resolve the probe variable to its most recent earlier binder;
            // variables bound only by the enclosing environment end the chain.
            let Some(earlier) = patterns
                .iter()
                .rposition(|p| p.bound_vars().contains(probe))
            else {
                break 'extend;
            };
            new_preds.push(ChainPred {
                later,
                earlier,
                later_var: build.to_string(),
                earlier_var: probe.to_string(),
            });
        }
        preds.extend(new_preds);
        patterns.push(pattern);
        len += 1;
    }
    if len >= 2 {
        Some(Chain { start, len, preds })
    } else {
        None
    }
}

/// Extract the (composite) join key named by `vars` from a matched environment.
fn key_from(env: &Env, vars: &[&str]) -> Option<Value> {
    let mut parts = Vec::with_capacity(vars.len());
    for var in vars {
        parts.push(env.get(var)?.clone());
    }
    Some(composite_key(parts))
}

impl<P: ExtentProvider> Evaluator<P> {
    /// Create an evaluator over the given extent provider (hash-join planning,
    /// statistics-driven reordering and parallel extent fetch all on; no plan cache).
    pub fn new(provider: P) -> Self {
        Evaluator {
            provider,
            use_planner: true,
            reorder: true,
            bushy: true,
            parallel: true,
            use_index: true,
            columnar: true,
            plan_cache: None,
            index_store: None,
            step_probe: None,
            engine_stats: None,
            reopt_factor: DEFAULT_REOPT_FACTOR,
        }
    }

    /// Disable comprehension planning: evaluate every comprehension with the naive
    /// nested-loop semantics. This is the reference implementation the planner must
    /// agree with; used by property tests and benchmark baselines.
    pub fn with_nested_loops(mut self) -> Self {
        self.use_planner = false;
        self
    }

    /// Disable statistics-driven join reordering (keep textual join orientation).
    pub fn without_reorder(mut self) -> Self {
        self.reorder = false;
        self
    }

    /// Disable the bushy join enumerator: chains of three or more generators
    /// are reordered with the greedy smallest-extent-first rule only
    /// ([`JoinStrategy::Multiway`]). The differential harness runs this
    /// configuration as its own leg, and the `table1_star_join` bench group
    /// uses it as the baseline the enumerator is measured against.
    pub fn without_bushy(mut self) -> Self {
        self.bushy = false;
        self
    }

    /// Count the steps of every plan this evaluator executes in `probe`
    /// (see [`StepProbe`]).
    pub fn with_step_probe(mut self, probe: Arc<StepProbe>) -> Self {
        self.step_probe = Some(probe);
        self
    }

    /// Fetch plan-time generator sources sequentially instead of on scoped threads.
    pub fn without_parallel_fetch(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Memoise built plans in `cache` (see [`PlanCache`] for the sharing contract).
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    /// Persist point-lookup indexes in `store` (see [`IndexStore`]), so they
    /// survive plan-cache invalidation and are refreshed copy-on-write across
    /// inserts on append-only providers. The same logical-provider sharing
    /// contract as [`PlanCache`] applies.
    pub fn with_index_store(mut self, store: Arc<IndexStore>) -> Self {
        self.index_store = Some(store);
        self
    }

    /// Disable point-lookup index planning entirely: residual equality filters
    /// (`x = ?p`, `x = literal`) execute as plain filtered scans, exactly as
    /// they did before secondary indexes existed. The differential harness runs
    /// this configuration as its own leg.
    ///
    /// ```
    /// use iql::env::Env;
    /// use iql::{parse, Evaluator, JoinStrategy, MapExtents, IndexStore, StepKind};
    /// use std::sync::Arc;
    ///
    /// let mut extents = MapExtents::new();
    /// extents.insert_pairs("t,v", (0..50).map(|i| (i, "x")).collect());
    /// let q = parse("[v | {k, v} <- <<t, v>>; k = 7]").unwrap();
    ///
    /// let store = Arc::new(IndexStore::new());
    /// let indexed = Evaluator::new(&extents).with_index_store(Arc::clone(&store));
    /// let stats = indexed.explain(&q, &Env::new()).unwrap();
    /// assert!(matches!(stats[0].strategy, JoinStrategy::IndexLookup));
    ///
    /// let disabled = Evaluator::new(&extents)
    ///     .with_index_store(store)
    ///     .without_index();
    /// assert!(disabled.explain(&q, &Env::new()).unwrap().is_empty());
    /// // Both legs return identical bags, in identical order.
    /// assert_eq!(indexed.eval_closed(&q), disabled.eval_closed(&q));
    /// ```
    pub fn without_index(mut self) -> Self {
        self.use_index = false;
        self
    }

    /// Set the actual/estimated output divergence factor past which a cached
    /// plan re-optimises on its next execution (default
    /// [`DEFAULT_REOPT_FACTOR`]). Values below 1.0 are clamped to 1.0.
    pub fn with_reopt_factor(mut self, factor: f64) -> Self {
        self.reopt_factor = factor.max(1.0);
        self
    }

    /// Select the execution engine for planned comprehensions: `true` (the
    /// default) runs columnar-eligible plans through the vectorised columnar
    /// executor, `false` forces the recursive row engine — the differential
    /// oracle — for every plan. Eligibility is per plan: open or
    /// parameter-dependent generator sources always run on the row engine,
    /// and a columnar run that hits a runtime error re-runs on the row engine
    /// so error reporting is identical. Both engines produce identical bags,
    /// order and multiplicities included.
    ///
    /// ```
    /// use iql::env::Env;
    /// use iql::{parse, Evaluator, ExecEngine, MapExtents};
    ///
    /// let mut extents = MapExtents::new();
    /// extents.insert_pairs("t,v", vec![(1, "a"), (2, "b"), (3, "c")]);
    /// let q = parse("[x | {k, x} <- <<t, v>>; k > 1]").unwrap();
    ///
    /// let columnar = Evaluator::new(&extents);
    /// let row = Evaluator::new(&extents).with_columnar(false);
    /// assert_eq!(
    ///     columnar.execution_engine(&q, &Env::new()).unwrap(),
    ///     ExecEngine::Columnar,
    /// );
    /// assert_eq!(row.execution_engine(&q, &Env::new()).unwrap(), ExecEngine::Row);
    /// // Same bag, same order, from either engine.
    /// assert_eq!(columnar.eval_closed(&q), row.eval_closed(&q));
    /// ```
    pub fn with_columnar(mut self, on: bool) -> Self {
        self.columnar = on;
        self
    }

    /// Record engine selection (columnar executions, row fallbacks) in
    /// `stats`, shared across evaluators the way a [`StepProbe`] is.
    pub fn with_engine_stats(mut self, stats: Arc<EngineStats>) -> Self {
        self.engine_stats = Some(stats);
        self
    }

    /// The engine [`Evaluator::eval`] would execute `expr`'s top-level
    /// comprehension plan on, without executing it — the explain-style
    /// counterpart to [`StepProbe::engine_count`]. Non-comprehensions, naive
    /// (planner-off) evaluation and disabled-columnar evaluators report
    /// [`ExecEngine::Row`]. This predicts engine *selection*; a columnar run
    /// that aborts on a runtime error still re-runs on the row engine.
    pub fn execution_engine(&self, expr: &Expr, env: &Env) -> Result<ExecEngine, EvalError> {
        match expr {
            Expr::Comp { head, qualifiers } if self.use_planner => {
                let plan = self.plan_for(expr, qualifiers, env)?;
                Ok(if self.columnar && plan.columnar(head).is_some() {
                    ExecEngine::Columnar
                } else {
                    ExecEngine::Row
                })
            }
            _ => Ok(ExecEngine::Row),
        }
    }

    /// Count one planned execution against the engine that produced its
    /// result. Row executions are fallbacks only while the columnar engine
    /// is enabled (with it off, running the row engine is the configuration,
    /// not a fallback).
    fn record_engine(&self, engine: ExecEngine) {
        if let Some(probe) = &self.step_probe {
            probe.record_engine(engine);
        }
        if let Some(stats) = &self.engine_stats {
            match engine {
                ExecEngine::Columnar => stats.record_columnar(),
                ExecEngine::Row => {
                    if self.columnar {
                        stats.record_fallback();
                    }
                }
            }
        }
    }

    /// Evaluate an expression in an empty environment.
    pub fn eval_closed(&self, expr: &Expr) -> Result<Value, EvalError> {
        self.eval(expr, &Env::new())
    }

    /// Plan the top-level comprehension of `expr` (without executing it) and return
    /// the per-join statistics the planner's ordering decisions were based on.
    /// Non-comprehension expressions report no joins. With a [`PlanCache`]
    /// attached, this reports the plan an execution would actually use —
    /// including one adopted by a re-optimisation round.
    pub fn explain(&self, expr: &Expr, env: &Env) -> Result<Vec<JoinStats>, EvalError> {
        match expr {
            Expr::Comp { qualifiers, .. } => {
                Ok(self.plan_for(expr, qualifiers, env)?.join_stats.clone())
            }
            _ => Ok(Vec::new()),
        }
    }

    /// Evaluate an expression in the given environment.
    pub fn eval(&self, expr: &Expr, env: &Env) -> Result<Value, EvalError> {
        match expr {
            Expr::Lit(lit) => Ok(literal_value(lit)),
            Expr::Var(name) => env
                .get(name)
                .cloned()
                .ok_or_else(|| EvalError::UnboundVariable(name.clone())),
            Expr::Param(name) => env
                .param(name)
                .cloned()
                .ok_or_else(|| EvalError::UnboundParam(name.clone())),
            Expr::Scheme(scheme) => Ok(Value::Bag((*self.provider.extent(scheme)?).clone())),
            Expr::Tuple(items) => {
                let mut vals = Vec::with_capacity(items.len());
                for item in items {
                    vals.push(self.eval(item, env)?);
                }
                Ok(Value::tuple(vals))
            }
            Expr::Bag(items) => {
                let mut vals = Vec::with_capacity(items.len());
                for item in items {
                    vals.push(self.eval(item, env)?);
                }
                Ok(Value::Bag(Bag::from_values(vals)))
            }
            Expr::Comp { head, qualifiers } => {
                let mut out = Bag::empty();
                if self.use_planner {
                    let plan = self.plan_for(expr, qualifiers, env)?;
                    if let Some(probe) = &self.step_probe {
                        for step in &plan.steps {
                            probe.record(step.kind());
                        }
                    }
                    let compiled = if self.columnar {
                        plan.columnar(head)
                    } else {
                        None
                    };
                    match compiled {
                        Some(cplan) => match columnar::exec(self, &cplan, env) {
                            Ok(bag) => {
                                self.record_engine(ExecEngine::Columnar);
                                out = bag;
                            }
                            // A runtime error inside the columnar engine:
                            // discard the partial result and re-run the whole
                            // plan on the row engine, so the surfaced error
                            // (and the depth-first order it is raised in) is
                            // exactly the row engine's.
                            Err(_) => {
                                self.record_engine(ExecEngine::Row);
                                self.exec_plan(head, &plan.steps, env, &mut out)?;
                            }
                        },
                        None => {
                            self.record_engine(ExecEngine::Row);
                            self.exec_plan(head, &plan.steps, env, &mut out)?;
                        }
                    }
                } else {
                    self.eval_comprehension(head, qualifiers, env, &mut out)?;
                }
                Ok(Value::Bag(out))
            }
            Expr::Apply { function, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env)?);
                }
                builtins::apply(function, &vals)
            }
            Expr::BinOp { op, lhs, rhs } => self.eval_binop(*op, lhs, rhs, env),
            Expr::UnOp { op, expr } => {
                let v = self.eval(expr, env)?;
                match op {
                    UnOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(EvalError::TypeError {
                            context: "negation".into(),
                            found: other.type_name().into(),
                        }),
                    },
                    UnOp::Not => Ok(Value::Bool(!v.as_bool()?)),
                }
            }
            Expr::If {
                cond,
                then,
                otherwise,
            } => {
                if self.eval(cond, env)?.as_bool()? {
                    self.eval(then, env)
                } else {
                    self.eval(otherwise, env)
                }
            }
            Expr::Let {
                pattern,
                value,
                body,
            } => {
                let v = self.eval(value, env)?;
                let mut inner = env.clone();
                if !match_pattern(pattern, &v, &mut inner)? {
                    return Err(EvalError::PatternMismatch {
                        pattern: pattern.to_string(),
                        value: v.to_string(),
                    });
                }
                self.eval(body, &inner)
            }
            Expr::Void => Ok(Value::Void),
            Expr::Any => Ok(Value::Any),
            // Evaluating a Range materialises its *lower bound*: this is the sound
            // choice for query answering over extents that are not fully derivable
            // (certain-answer semantics). The upper bound is only consulted by the
            // query processor when reasoning about containment.
            Expr::Range { lower, .. } => self.eval(lower, env),
        }
    }

    /// Fetch a comprehension's plan: from the attached [`PlanCache`] when current,
    /// otherwise by planning now (storing the result when it is cacheable).
    ///
    /// A hit whose recorded cardinality feedback diverged past
    /// [`Evaluator::with_reopt_factor`] triggers one **re-optimisation round**:
    /// replan with the observed selectivities fed back into the bushy cost
    /// model, keep whichever plan actually materialised fewer intermediate
    /// rows, and pin the winner for the rest of this provider version.
    fn plan_for(
        &self,
        comp: &Expr,
        qualifiers: &[Qualifier],
        env: &Env,
    ) -> Result<Arc<Plan>, EvalError> {
        let Some(cache) = &self.plan_cache else {
            return Ok(Arc::new(self.plan_comprehension(qualifiers, env, None)?));
        };
        let version = self.provider.version();
        match cache.lookup(comp, version) {
            PlanLookup::Hit(plan) => Ok(plan),
            PlanLookup::Reoptimize {
                plan: previous,
                observed,
            } => {
                let replanned =
                    Arc::new(self.plan_comprehension(qualifiers, env, Some(&observed))?);
                let chosen = if replanned.cacheable
                    && plan_actual_cost(&replanned) < plan_actual_cost(&previous)
                {
                    replanned
                } else {
                    previous
                };
                cache.store_reoptimized(comp.clone(), version, Arc::clone(&chosen));
                Ok(chosen)
            }
            PlanLookup::Miss => {
                let plan = Arc::new(self.plan_comprehension(qualifiers, env, None)?);
                if plan.cacheable {
                    let pending = plan
                        .feedback
                        .as_ref()
                        .filter(|fb| fb.max_divergence > self.reopt_factor)
                        .map(|fb| Arc::new(fb.observed.clone()));
                    cache.store(comp.clone(), version, Arc::clone(&plan), pending);
                }
                Ok(plan)
            }
        }
    }

    /// Evaluate the plan-time sources, in parallel on scoped threads when there are
    /// at least two (they are independent by construction). Results and errors are
    /// reassembled in qualifier order so evaluation stays deterministic.
    ///
    /// Worker threads come out of the process-wide [`FetchPool`] budget: the
    /// fan-out asks for up to `len - 1` permits (the calling thread works too) and
    /// runs whatever share the pool cannot cover inline, so nested fan-outs across
    /// the whole process never oversubscribe the machine.
    fn eval_sources(
        &self,
        wanted: &[(usize, &Expr)],
        env: &Env,
    ) -> Result<BTreeMap<usize, Bag>, EvalError> {
        let mut out = BTreeMap::new();
        // Worker threads only pay off when fetching actually computes something:
        // either the provider says scheme resolution is expensive, or a source is a
        // compound expression evaluated right here.
        let worthwhile = self.provider.prefers_parallel_fetch()
            || wanted
                .iter()
                .any(|(_, source)| !matches!(source, Expr::Scheme(_)));
        // A single-core machine (pool capacity 1) gains nothing from running a
        // worker alongside the caller — skip the fan-out entirely there.
        let pool = FetchPool::global();
        let mut permits =
            if self.parallel && worthwhile && wanted.len() >= 2 && pool.capacity() >= 2 {
                pool.acquire_up_to(wanted.len() - 1)
            } else {
                pool.acquire_up_to(0)
            };
        if permits.count() > 0 {
            let workers = permits.count() + 1; // the caller takes a share too
            let chunk = wanted.len().div_ceil(workers);
            // Ceil-division may need fewer chunks than workers: return the
            // surplus permits instead of stranding them for the fan-out.
            permits.truncate(wanted.len().div_ceil(chunk) - 1);
            let results: Vec<Result<Bag, EvalError>> = std::thread::scope(|scope| {
                let mut chunks = wanted.chunks(chunk);
                let caller_share = chunks.next().unwrap_or(&[]);
                let handles: Vec<_> = chunks
                    .map(|slice| {
                        scope.spawn(move || {
                            slice
                                .iter()
                                .map(|(_, source)| {
                                    self.eval(source, env).and_then(|v| v.expect_bag())
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                let mut results: Vec<Result<Bag, EvalError>> = caller_share
                    .iter()
                    .map(|(_, source)| self.eval(source, env).and_then(|v| v.expect_bag()))
                    .collect();
                for handle in handles {
                    results.extend(handle.join().expect("extent fetch thread panicked"));
                }
                results
            });
            for ((i, _), result) in wanted.iter().zip(results) {
                out.insert(*i, result?);
            }
        } else {
            for (i, source) in wanted {
                out.insert(*i, self.eval(source, env)?.expect_bag()?);
            }
        }
        Ok(out)
    }

    /// Build the step list for a comprehension: classify qualifiers, prefetch every
    /// plan-time source (in parallel), reorder the leading generator chain via its
    /// join graph when profitable (pairs through the pair planner, longer chains
    /// through the greedy multiway planner), and fuse the remaining equi-join runs
    /// into hash joins (see module docs).
    ///
    /// `overrides` carries observed per-edge selectivities from a cached plan's
    /// execution feedback; when present they replace the histogram estimates in
    /// the bushy enumerator (the adaptive re-optimisation round).
    fn plan_comprehension(
        &self,
        qualifiers: &[Qualifier],
        env: &Env,
        overrides: Option<&ObservedSelectivities>,
    ) -> Result<Plan, EvalError> {
        let slots = analyse(qualifiers);
        let chain = if self.reorder {
            chain_candidate(&slots)
        } else {
            None
        };
        let chain_start = chain.as_ref().map(|c| c.start);
        let mut wanted: Vec<(usize, &Expr)> = Vec::new();
        for (i, slot) in slots.iter().enumerate() {
            match slot {
                Slot::Fused { source, .. } => wanted.push((i, source)),
                Slot::Gen { source, .. } if Some(i) == chain_start => wanted.push((i, source)),
                _ => {}
            }
        }
        let mut bags = self.eval_sources(&wanted, env)?;
        // A plan may only be cached when everything evaluated at plan time is a
        // *closed* expression: no free variables, and no `?name` parameters —
        // a source evaluated under one parameter binding must not be baked into
        // a plan that other bindings would share. Parameters in *filters* are
        // fine (and the whole point of prepared queries): filters stay in the
        // plan as expressions and re-resolve per execution.
        let cacheable = wanted.iter().all(|(_, source)| {
            rewrite::free_vars(source).is_empty() && rewrite::collect_params(source).is_empty()
        });

        let mut steps = Vec::with_capacity(slots.len());
        let mut join_stats = Vec::new();
        let mut feedback = None;
        let mut i = 0;
        while i < slots.len() {
            if Some(i) == chain_start {
                let c = chain.as_ref().expect("chain start implies a chain");
                if c.len >= 3 {
                    // Whole-chain reorder: the bushy enumerator first (exhaustive
                    // for small chains), the greedy order as fallback; on a full
                    // bail-out (cross-product estimate, disconnected graph) fall
                    // through to the pair planner below.
                    let (patterns, sources) = chain_parts(c, &slots);
                    let matched = match_chain_rows(&patterns, c.start, &bags, env)?;
                    let mut planned = if self.bushy {
                        self.plan_bushy_join(c, &patterns, &sources, &matched, overrides)?
                    } else {
                        None
                    };
                    if planned.is_none() {
                        planned = self.plan_chain_join(c, &patterns, &sources, &matched)?;
                    }
                    if let Some(chain_plan) = planned {
                        for pos in 0..c.len {
                            bags.remove(&(c.start + pos));
                        }
                        steps.extend(chain_plan.steps);
                        join_stats.extend(chain_plan.stats);
                        feedback = chain_plan.feedback;
                        i += c.len;
                        continue;
                    }
                }
                let Slot::Gen { pattern: p1, .. } = &slots[i] else {
                    unreachable!("chain starts with a plain generator");
                };
                let Slot::Fused {
                    pattern: p2,
                    probe_vars,
                    build_vars,
                    ..
                } = &slots[i + 1]
                else {
                    unreachable!("chain continues with a fused generator");
                };
                let bag1 = bags.remove(&i).expect("prefetched outer source");
                let bag2 = bags.remove(&(i + 1)).expect("prefetched inner source");
                let (pair_steps, stats) =
                    plan_join_pair(p1, p2, probe_vars, build_vars, bag1, bag2, env)?;
                steps.extend(pair_steps);
                join_stats.push(stats);
                i += 2;
                continue;
            }
            match &slots[i] {
                Slot::Filter(cond) => steps.push(Step::Filter((*cond).clone())),
                Slot::Bind { pattern, value } => steps.push(Step::Bind {
                    pattern: (*pattern).clone(),
                    value: (*value).clone(),
                }),
                Slot::Gen { pattern, source } => {
                    // A generator directly followed by point-equality filters
                    // (`var = ?param` / `var = literal`) over its own pattern
                    // variables becomes one index probe per execution instead
                    // of a per-execution scan.
                    if let Some((step, stats, consumed)) =
                        self.plan_point_lookup(&slots, i, pattern, source, env)?
                    {
                        steps.push(step);
                        join_stats.push(stats);
                        i += 1 + consumed;
                        continue;
                    }
                    steps.push(Step::Iterate {
                        pattern: (*pattern).clone(),
                        source: (*source).clone(),
                    });
                }
                Slot::Fused {
                    pattern,
                    probe_vars,
                    build_vars,
                    ..
                } => {
                    let bag = bags.remove(&i).expect("prefetched build source");
                    let (index, stats) = build_index(pattern, &bag, build_vars, env, None)?;
                    join_stats.push(stats);
                    steps.push(Step::HashJoin {
                        pattern: (*pattern).clone(),
                        probe_vars: probe_vars.iter().map(|v| v.to_string()).collect(),
                        index: Arc::new(index),
                    });
                }
            }
            i += 1;
        }
        Ok(Plan::assemble(steps, join_stats, cacheable, feedback))
    }

    /// Detect a point-lookup run: the maximal sequence of filters directly
    /// after a plain generator whose shape is `var = ?param` / `var = literal`
    /// (either side order) with `var` bound by the generator's pattern. Returns
    /// the [`Step::IndexLookup`] replacing the generator and those filters,
    /// its stats, and how many filter slots were consumed.
    ///
    /// Requires a closed source (the index is baked into the plan) and either
    /// an [`IndexStore`] or a [`PlanCache`] attached — without any persistence
    /// the index would be rebuilt per evaluation, costing more than the scan it
    /// replaces.
    fn plan_point_lookup(
        &self,
        slots: &[Slot<'_>],
        at: usize,
        pattern: &Pattern,
        source: &Expr,
        env: &Env,
    ) -> Result<Option<(Step, JoinStats, usize)>, EvalError> {
        if !self.use_index || (self.index_store.is_none() && self.plan_cache.is_none()) {
            return Ok(None);
        }
        if !rewrite::free_vars(source).is_empty() || !rewrite::collect_params(source).is_empty() {
            return Ok(None);
        }
        let bound: BTreeSet<&str> = pattern.bound_vars().into_iter().collect();
        let mut vars: Vec<&str> = Vec::new();
        let mut key_exprs: Vec<Expr> = Vec::new();
        let mut j = at + 1;
        while let Some(Slot::Filter(cond)) = slots.get(j) {
            let Some((var, key_expr)) = point_filter_key(cond, &bound) else {
                break;
            };
            vars.push(var);
            key_exprs.push(key_expr.clone());
            j += 1;
        }
        if vars.is_empty() {
            return Ok(None);
        }
        let (index, stats) = self.point_index(source, pattern, &vars, env)?;
        Ok(Some((
            Step::IndexLookup {
                pattern: pattern.clone(),
                key_exprs,
                index,
            },
            stats,
            j - at - 1,
        )))
    }

    /// Fetch or build the point-lookup index over `source` keyed by the values
    /// `pattern` binds to `vars`. Serves from the attached [`IndexStore`] when
    /// current; on a stale entry over an append-only provider, refreshes
    /// copy-on-write by indexing only the appended tail; otherwise builds from
    /// a full scan (persisting when a store is attached).
    fn point_index(
        &self,
        source: &Expr,
        pattern: &Pattern,
        vars: &[&str],
        env: &Env,
    ) -> Result<(Arc<PointIndex>, JoinStats), EvalError> {
        let version = self.provider.version();
        let key: IndexKey = (
            source.clone(),
            pattern.clone(),
            vars.iter().map(|v| v.to_string()).collect(),
        );
        if let Some(store) = &self.index_store {
            if let Some(index) = store.lookup(&key, version) {
                let stats = point_stats(&index);
                return Ok((index, stats));
            }
        }
        let bag = self.eval(source, env)?.expect_bag()?;
        if let Some(store) = &self.index_store {
            if self.provider.extents_append_only() {
                if let Some((scanned, stale)) = store.stale(&key) {
                    if scanned <= bag.len() {
                        let mut refreshed = stale;
                        let map = Arc::make_mut(&mut refreshed);
                        for element in &bag.items()[scanned..] {
                            let mut scratch = env.clone();
                            if match_pattern(pattern, element, &mut scratch)? {
                                if let Some(k) = key_from(&scratch, vars) {
                                    map.push(k, element.clone());
                                }
                            }
                        }
                        store.store(key, version, bag.len(), Arc::clone(&refreshed), true);
                        let stats = point_stats(&refreshed);
                        return Ok((refreshed, stats));
                    }
                }
            }
        }
        let mut index = PointIndex::default();
        for element in bag.iter() {
            let mut scratch = env.clone();
            if match_pattern(pattern, element, &mut scratch)? {
                if let Some(k) = key_from(&scratch, vars) {
                    index.push(k, element.clone());
                }
            }
        }
        let index = Arc::new(index);
        if let Some(store) = &self.index_store {
            store.store(key, version, bag.len(), Arc::clone(&index), false);
        }
        let stats = point_stats(&index);
        Ok((index, stats))
    }

    /// Plan a generator chain of three or more via its join graph, **greedily**:
    /// always the smallest not-yet-joined connected generator next,
    /// hash-indexing whichever side of each edge join is smaller, and restore
    /// the nested-loop output order with one final sort on the original bag
    /// positions in textual generator order. This is the fallback for chains
    /// the bushy enumerator does not cover (too long, or bailed out).
    ///
    /// Per-step output estimates come from the per-extent key histograms persisted
    /// in the attached [`PlanCache`] (computed and stored on first use), so
    /// planning over memoised extents needs no extra pass over the data. Returns
    /// `Ok(None)` to bail out — join graph disconnected (a cross product the
    /// greedy order cannot reach) or an estimate past [`REORDER_OUTPUT_CAP`] —
    /// in which case the caller falls back to pair planning.
    fn plan_chain_join(
        &self,
        chain: &Chain,
        patterns: &[&Pattern],
        sources: &[&Expr],
        matched: &[MatchedRows],
    ) -> Result<Option<ChainPlan>, EvalError> {
        let m = chain.len;
        let mut in_set = vec![false; m];
        let mut remaining: BTreeSet<usize> = (0..m).collect();
        let seed = (0..m)
            .min_by_key(|&g| matched[g].len())
            .expect("chain is nonempty");
        in_set[seed] = true;
        remaining.remove(&seed);
        // Intermediate rows: per chain position, an index into `matched[pos]`.
        let mut rows: Vec<Vec<usize>> = (0..matched[seed].len())
            .map(|idx| {
                let mut row = vec![UNSET; m];
                row[seed] = idx;
                row
            })
            .collect();
        let mut stats_out = Vec::new();
        let mut used = vec![false; chain.preds.len()];
        while !remaining.is_empty() {
            let connected = |g: usize| {
                chain.preds.iter().any(|p| {
                    (p.later == g && in_set[p.earlier]) || (p.earlier == g && in_set[p.later])
                })
            };
            let Some(n) = remaining
                .iter()
                .copied()
                .filter(|&g| connected(g))
                .min_by_key(|&g| matched[g].len())
            else {
                return Ok(None); // disconnected join graph: joining on would cross-product
            };
            // Every predicate between `n` and the joined set becomes one component
            // of this edge join's composite key; predicates whose other endpoint
            // is still unjoined stay deferred until that endpoint joins.
            let mut n_vars: Vec<&str> = Vec::new();
            let mut other: Vec<(usize, &str)> = Vec::new();
            for (pi, p) in chain.preds.iter().enumerate() {
                if used[pi] {
                    continue;
                }
                if p.later == n && in_set[p.earlier] {
                    n_vars.push(&p.later_var);
                    other.push((p.earlier, &p.earlier_var));
                    used[pi] = true;
                } else if p.earlier == n && in_set[p.later] {
                    n_vars.push(&p.earlier_var);
                    other.push((p.later, &p.later_var));
                    used[pi] = true;
                }
            }
            let n_rows = matched[n].len();
            let inter_rows = rows.len();
            let histogram = self.chain_histogram(sources[n], patterns[n], &n_vars, &matched[n]);
            let estimated = inter_rows as f64 * n_rows as f64 / histogram.distinct.max(1) as f64;
            if estimated > REORDER_OUTPUT_CAP * (inter_rows + n_rows + 1) as f64 {
                return Ok(None);
            }
            // Hash the smaller side of the edge join, probe from the bigger one;
            // the final positional sort makes the probe order irrelevant.
            let mut joined: Vec<Vec<usize>> = Vec::new();
            if n_rows <= inter_rows {
                let mut index: HashMap<Value, Vec<usize>> = HashMap::new();
                for (idx, (_, _, scratch)) in matched[n].iter().enumerate() {
                    if let Some(key) = key_from(scratch, &n_vars) {
                        index.entry(key).or_default().push(idx);
                    }
                }
                for row in &rows {
                    let Some(key) = chain_row_key(matched, row, &other) else {
                        continue;
                    };
                    if let Some(idxs) = index.get(&key) {
                        for &idx in idxs {
                            let mut r = row.clone();
                            r[n] = idx;
                            joined.push(r);
                        }
                    }
                }
            } else {
                let mut index: HashMap<Value, Vec<usize>> = HashMap::new();
                for (ri, row) in rows.iter().enumerate() {
                    if let Some(key) = chain_row_key(matched, row, &other) {
                        index.entry(key).or_default().push(ri);
                    }
                }
                for (idx, (_, _, scratch)) in matched[n].iter().enumerate() {
                    if let Some(key) = key_from(scratch, &n_vars) {
                        if let Some(ris) = index.get(&key) {
                            for &ri in ris {
                                let mut r = rows[ri].clone();
                                r[n] = idx;
                                joined.push(r);
                            }
                        }
                    }
                }
            }
            stats_out.push(JoinStats {
                strategy: JoinStrategy::Multiway,
                build_rows: n_rows.min(inter_rows),
                probe_rows: Some(n_rows.max(inter_rows)),
                distinct_keys: histogram.distinct,
                max_bucket: histogram.max_bucket,
                estimated_output: Some(estimated),
                actual_output: Some(joined.len()),
            });
            rows = joined;
            in_set[n] = true;
            remaining.remove(&n);
        }
        if used.iter().any(|u| !u) {
            return Ok(None); // defensive: a predicate never became joinable
        }
        Ok(Some(ChainPlan {
            steps: vec![Step::MultiJoin {
                patterns: patterns.iter().map(|p| (*p).clone()).collect(),
                rows: Arc::new(materialise_chain_rows(matched, rows)),
            }],
            stats: stats_out,
            feedback: None,
        }))
    }

    /// Plan a generator chain of three to [`bushy::MAX_DP_RELATIONS`] via the
    /// exhaustive bushy enumerator (see [`crate::bushy`]): build the join
    /// graph's edge selectivities from the persisted per-extent key histograms
    /// (one histogram per predicate endpoint, computed — and cached in the
    /// attached [`PlanCache`] — on first use), let the dynamic program pick the
    /// cheapest tree over every connected shape, then execute the tree with
    /// recursive hash joins and restore the nested-loop output order with one
    /// positional sort.
    ///
    /// Returns `Ok(None)` to bail out — chain too long for the DP, join graph
    /// disconnected, or any estimated intermediate of the winning tree past
    /// [`REORDER_OUTPUT_CAP`] — in which case the caller falls back to the
    /// greedy chain reorder.
    fn plan_bushy_join(
        &self,
        chain: &Chain,
        patterns: &[&Pattern],
        sources: &[&Expr],
        matched: &[MatchedRows],
        overrides: Option<&ObservedSelectivities>,
    ) -> Result<Option<ChainPlan>, EvalError> {
        if chain.len > bushy::MAX_DP_RELATIONS || chain.preds.is_empty() {
            return Ok(None);
        }
        // Local memo over (chain position, key var): a star hub shares one
        // endpoint across every predicate, and without an attached PlanCache
        // each chain_histogram call would rescan that generator's matched rows.
        let mut histograms: HashMap<(usize, &str), KeyHistogram> = HashMap::new();
        let mut edges: Vec<bushy::EdgeSel> = Vec::with_capacity(chain.preds.len());
        for p in &chain.preds {
            let earlier = *histograms
                .entry((p.earlier, p.earlier_var.as_str()))
                .or_insert_with(|| {
                    self.chain_histogram(
                        sources[p.earlier],
                        patterns[p.earlier],
                        &[p.earlier_var.as_str()],
                        &matched[p.earlier],
                    )
                });
            let later = *histograms
                .entry((p.later, p.later_var.as_str()))
                .or_insert_with(|| {
                    self.chain_histogram(
                        sources[p.later],
                        patterns[p.later],
                        &[p.later_var.as_str()],
                        &matched[p.later],
                    )
                });
            let distinct = earlier.distinct.max(later.distinct).max(1);
            edges.push(bushy::EdgeSel {
                a: p.earlier,
                b: p.later,
                selectivity: 1.0 / distinct as f64,
            });
        }
        // Adaptive re-optimisation: when a previous execution of this plan
        // recorded observed per-edge selectivities (because an estimate
        // diverged past the configured factor), they replace the histogram
        // estimates before enumeration — so the DP reconsiders trees with the
        // cardinalities the workload actually produced.
        if let Some(observed) = overrides {
            for edge in &mut edges {
                let pair = (edge.a.min(edge.b), edge.a.max(edge.b));
                if let Some((_, sel)) = observed.iter().find(|(p, _)| *p == pair) {
                    edge.selectivity = *sel;
                }
            }
        }
        let cards: Vec<usize> = matched.iter().map(Vec::len).collect();
        let Some(best) = bushy::enumerate(&cards, &edges) else {
            return Ok(None); // disconnected join graph (or out of DP range)
        };
        // Cap every intermediate the winning tree would materialise, not just
        // its root output — mirroring the greedy planner's per-step cap, so a
        // chain whose cheapest tree still passes through an explosive
        // intermediate bails out instead of building it at plan time.
        let total: usize = cards.iter().sum();
        let row_cap = REORDER_OUTPUT_CAP * (total + 1) as f64;
        if best.max_intermediate > row_cap {
            return Ok(None);
        }
        // The estimate trusts `1/max(distinct)`, which key skew betrays (one
        // heavy bucket in a high-distinct column); the executor therefore
        // re-checks **actual** intermediate row counts against the same cap
        // and aborts mid-join, falling back to the greedy planner — whose own
        // per-step estimates feed on observed intermediate sizes.
        let mut stats_out = Vec::new();
        let Some(rows) = exec_join_tree(&best.tree, matched, &chain.preds, row_cap, &mut stats_out)
        else {
            return Ok(None);
        };
        // Joins materialise at plan time, so actual node cardinalities are in
        // hand right here: compare them against what the (possibly overridden)
        // edge selectivities predicted, and carry the divergence + observed
        // selectivities out as feedback for the plan cache.
        let feedback = bushy_feedback(&stats_out, &cards, &edges);
        Ok(Some(ChainPlan {
            steps: vec![Step::BushyJoin {
                patterns: patterns.iter().map(|p| (*p).clone()).collect(),
                rows: Arc::new(materialise_chain_rows(matched, rows)),
            }],
            stats: stats_out,
            feedback,
        }))
    }

    /// The key histogram for one side of a chain edge join: served from the
    /// [`PlanCache`]'s persisted per-extent histograms when the source is a closed
    /// expression (so the histogram is extent-intrinsic), computed — and persisted
    /// for the next plan — otherwise.
    fn chain_histogram(
        &self,
        source: &Expr,
        pattern: &Pattern,
        key_vars: &[&str],
        matched: &[(usize, Value, Env)],
    ) -> KeyHistogram {
        let stats_key = match &self.plan_cache {
            // Closed means no free variables *and* no parameters: a histogram
            // computed under one parameter binding is not extent-intrinsic.
            Some(_)
                if rewrite::free_vars(source).is_empty()
                    && rewrite::collect_params(source).is_empty() =>
            {
                Some((
                    source.clone(),
                    pattern.clone(),
                    key_vars.iter().map(|v| v.to_string()).collect::<Vec<_>>(),
                ))
            }
            _ => None,
        };
        let version = self.provider.version();
        if let (Some(cache), Some(key)) = (&self.plan_cache, &stats_key) {
            if let Some(histogram) = cache.histogram(key, version) {
                return histogram;
            }
            // Incremental refresh: an append-only provider's extents only grow
            // at the tail, so a stale histogram whose counts covered the first
            // `scanned` matched rows is completed by counting just the tail —
            // not recounted from scratch on every version bump.
            if self.provider.extents_append_only() {
                if let Some((scanned, counts)) = cache.stale_histogram(key) {
                    if scanned <= matched.len() {
                        let mut counts = counts;
                        let fresh = Arc::make_mut(&mut counts);
                        let mut rows: usize = fresh.values().sum();
                        for (_, _, scratch) in &matched[scanned..] {
                            if let Some(k) = key_from(scratch, key_vars) {
                                *fresh.entry(k).or_insert(0) += 1;
                                rows += 1;
                            }
                        }
                        let histogram = KeyHistogram {
                            rows,
                            distinct: fresh.len(),
                            max_bucket: fresh.values().copied().max().unwrap_or(0),
                        };
                        cache.store_histogram(
                            key.clone(),
                            version,
                            histogram,
                            matched.len(),
                            counts,
                            true,
                        );
                        return histogram;
                    }
                }
            }
        }
        let mut counts: HashMap<Value, usize> = HashMap::new();
        let mut rows = 0usize;
        for (_, _, scratch) in matched {
            if let Some(key) = key_from(scratch, key_vars) {
                *counts.entry(key).or_insert(0) += 1;
                rows += 1;
            }
        }
        let histogram = KeyHistogram {
            rows,
            distinct: counts.len(),
            max_bucket: counts.values().copied().max().unwrap_or(0),
        };
        if let (Some(cache), Some(key)) = (&self.plan_cache, stats_key) {
            cache.store_histogram(
                key,
                version,
                histogram,
                matched.len(),
                Arc::new(counts),
                false,
            );
        }
        histogram
    }

    /// Build a [`StandingPlan`] for `expr`, or `None` when the shape is not
    /// incrementally maintainable.
    ///
    /// The plan is built with reordering, bushy enumeration and point-lookup
    /// indexes all disabled, so the step list is exactly the textual qualifier
    /// order (`Iterate`/`HashJoin`/`Filter`/`Bind` steps only) and output
    /// order is structural rather than restored by a plan-time sort. Hash-join
    /// build sides are evaluated **now** and retained behind `Arc`s; deltas
    /// probe those retained indexes instead of rebuilding them — which is
    /// sound precisely while the non-lead extents stay unchanged (the
    /// [`StandingPlan`] contract).
    ///
    /// Returns `None` when:
    /// - `expr` is not a comprehension (aggregations like `count(…)`,
    ///   `distinct(…)` wrap the comprehension in an `Apply` and must observe
    ///   the whole bag — the caller falls back to re-execution);
    /// - the first generator does not iterate a scheme extent directly;
    /// - the lead scheme is referenced more than once in the whole expression
    ///   (a self-join: appended rows would also need to join against
    ///   themselves and the old rows, which a single tail pass cannot produce
    ///   in nested-loop order).
    pub fn standing_plan(&self, expr: &Expr, env: &Env) -> Result<Option<StandingPlan>, EvalError> {
        let Expr::Comp { head, qualifiers } = expr else {
            return Ok(None);
        };
        let planner = Evaluator {
            provider: &self.provider,
            use_planner: true,
            reorder: false,
            bushy: false,
            parallel: self.parallel,
            use_index: false,
            columnar: false,
            plan_cache: None,
            index_store: None,
            step_probe: None,
            engine_stats: None,
            reopt_factor: self.reopt_factor,
        };
        let plan = planner.plan_comprehension(qualifiers, env, None)?;
        let mut lead = None;
        for (i, step) in plan.steps.iter().enumerate() {
            match step {
                Step::Filter(_) | Step::Bind { .. } => continue,
                Step::Iterate {
                    source: Expr::Scheme(s),
                    ..
                } => {
                    lead = Some((i, s.clone()));
                    break;
                }
                // First generator is a computed source or was fused into a
                // hash join (its probe key comes from a preceding `let`):
                // appends to an underlying scheme do not surface as a tail
                // append of the iterated bag, so no delta contract holds.
                _ => break,
            }
        }
        let Some((lead, lead_scheme)) = lead else {
            return Ok(None);
        };
        let mut occurrences = 0usize;
        rewrite::visit(expr, &mut |e| {
            if matches!(e, Expr::Scheme(s) if *s == lead_scheme) {
                occurrences += 1;
            }
        });
        if occurrences != 1 {
            return Ok(None);
        }
        Ok(Some(StandingPlan {
            head: (**head).clone(),
            steps: plan.steps,
            lead,
            lead_scheme,
            touched: rewrite::collect_schemes(expr),
        }))
    }

    /// Execute a standing plan in full (the subscription's initial answer, and
    /// the re-synchronisation path after a non-incrementalisable change).
    pub fn execute_standing(&self, plan: &StandingPlan, env: &Env) -> Result<Bag, EvalError> {
        let mut out = Bag::empty();
        self.exec_plan(&plan.head, &plan.steps, env, &mut out)?;
        Ok(out)
    }

    /// Delta-evaluate a standing plan against rows newly **appended to the
    /// lead scheme's extent**: run the prefix filters/binds once, then drive
    /// each appended element through the steps after the lead — probing the
    /// retained hash-join indexes rather than rebuilding them. The returned
    /// bag is exactly what a full re-execution would append at the tail of the
    /// previous result (same order, same multiplicities), **provided** no
    /// other touched extent changed since the plan was built or last verified
    /// (the [`StandingPlan`] contract — the caller's version bookkeeping
    /// enforces it and falls back to re-execution otherwise).
    pub fn delta_standing(
        &self,
        plan: &StandingPlan,
        appended: &[Value],
        env: &Env,
    ) -> Result<Bag, EvalError> {
        let mut out = Bag::empty();
        let mut env = env.clone();
        for step in &plan.steps[..plan.lead] {
            match step {
                Step::Filter(cond) => {
                    if !self.eval(cond, &env)?.as_bool()? {
                        return Ok(out);
                    }
                }
                Step::Bind { pattern, value } => {
                    let v = self.eval(value, &env)?;
                    let mut inner = env.clone();
                    if !match_pattern(pattern, &v, &mut inner)? {
                        return Ok(out);
                    }
                    env = inner;
                }
                _ => unreachable!("steps before the lead are filters and binds"),
            }
        }
        let Step::Iterate { pattern, .. } = &plan.steps[plan.lead] else {
            unreachable!("the lead step is a scheme iteration by construction");
        };
        let rest = &plan.steps[plan.lead + 1..];
        for element in appended {
            let mut inner = env.clone();
            if match_pattern(pattern, element, &mut inner)? {
                self.exec_plan(&plan.head, rest, &inner, &mut out)?;
            }
        }
        Ok(out)
    }

    fn eval_binop(&self, op: BinOp, lhs: &Expr, rhs: &Expr, env: &Env) -> Result<Value, EvalError> {
        // Short-circuiting boolean operators.
        if op == BinOp::And {
            return Ok(Value::Bool(
                self.eval(lhs, env)?.as_bool()? && self.eval(rhs, env)?.as_bool()?,
            ));
        }
        if op == BinOp::Or {
            return Ok(Value::Bool(
                self.eval(lhs, env)?.as_bool()? || self.eval(rhs, env)?.as_bool()?,
            ));
        }
        let l = self.eval(lhs, env)?;
        let r = self.eval(rhs, env)?;
        match op {
            BinOp::Eq => Ok(Value::Bool(l == r)),
            BinOp::Neq => Ok(Value::Bool(l != r)),
            BinOp::Lt => Ok(Value::Bool(l < r)),
            BinOp::Le => Ok(Value::Bool(l <= r)),
            BinOp::Gt => Ok(Value::Bool(l > r)),
            BinOp::Ge => Ok(Value::Bool(l >= r)),
            BinOp::BagUnion => Ok(Value::Bag(l.expect_bag()?.union(&r.expect_bag()?))),
            BinOp::BagDiff => Ok(Value::Bag(l.expect_bag()?.difference(&r.expect_bag()?))),
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => self.eval_arith(op, &l, &r),
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }

    fn eval_arith(&self, op: BinOp, l: &Value, r: &Value) -> Result<Value, EvalError> {
        // String concatenation with `+`.
        if op == BinOp::Add {
            if let (Value::Str(a), Value::Str(b)) = (l, r) {
                return Ok(Value::str(format!("{a}{b}")));
            }
        }
        match (l, r) {
            (Value::Int(a), Value::Int(b)) => match op {
                BinOp::Add => Ok(Value::Int(a + b)),
                BinOp::Sub => Ok(Value::Int(a - b)),
                BinOp::Mul => Ok(Value::Int(a * b)),
                BinOp::Div => {
                    if *b == 0 {
                        Err(EvalError::DivisionByZero)
                    } else {
                        Ok(Value::Int(a / b))
                    }
                }
                _ => unreachable!(),
            },
            _ => {
                let (a, b) = match (l.as_f64(), r.as_f64()) {
                    (Some(a), Some(b)) => (a, b),
                    _ => {
                        return Err(EvalError::TypeError {
                            context: format!("arithmetic `{}`", op.symbol()),
                            found: format!("{} and {}", l.type_name(), r.type_name()),
                        })
                    }
                };
                match op {
                    BinOp::Add => Ok(Value::Float(a + b)),
                    BinOp::Sub => Ok(Value::Float(a - b)),
                    BinOp::Mul => Ok(Value::Float(a * b)),
                    BinOp::Div => {
                        if b == 0.0 {
                            Err(EvalError::DivisionByZero)
                        } else {
                            Ok(Value::Float(a / b))
                        }
                    }
                    _ => unreachable!(),
                }
            }
        }
    }
}

/// Plan the leading join pair `p1 <- bag1; p2 <- bag2; <equi-run>` using the two
/// cardinalities: when the outer extent is smaller, hash *it*, iterate the bigger
/// inner extent, and restore the nested-loop output order with a stable positional
/// sort; otherwise keep the textual orientation (scan outer, hash inner). The
/// reorder is abandoned when the bucket-histogram output estimate says the sort
/// would dominate.
fn plan_join_pair(
    p1: &Pattern,
    p2: &Pattern,
    probe_vars: &[&str],
    build_vars: &[&str],
    bag1: Bag,
    bag2: Bag,
    env: &Env,
) -> Result<(Vec<Step>, JoinStats), EvalError> {
    let (n1, n2) = (bag1.len(), bag2.len());
    if n1 < n2 {
        // Index the smaller outer side, remembering each element's position so the
        // output order can be restored after probing in inner-extent order.
        let mut index1: HashMap<Value, Vec<(usize, Value)>> = HashMap::new();
        let mut indexed = 0usize;
        for (pos, element) in bag1.iter().enumerate() {
            let mut scratch = env.clone();
            if match_pattern(p1, element, &mut scratch)? {
                // Probe vars are all bound by p1 (reorder_candidate guarantees it).
                if let Some(key) = key_from(&scratch, probe_vars) {
                    index1.entry(key).or_default().push((pos, element.clone()));
                    indexed += 1;
                }
            }
        }
        let distinct = index1.len();
        let max_bucket = index1.values().map(Vec::len).max().unwrap_or(0);
        let estimated = n2 as f64 * indexed as f64 / distinct.max(1) as f64;
        if estimated <= REORDER_OUTPUT_CAP * (n1 + n2 + 1) as f64 {
            let mut tagged: Vec<(usize, Value, Value)> = Vec::new();
            for element in bag2.iter() {
                let mut scratch = env.clone();
                if match_pattern(p2, element, &mut scratch)? {
                    if let Some(key) = key_from(&scratch, build_vars) {
                        if let Some(matches) = index1.get(&key) {
                            for (pos, outer_el) in matches {
                                tagged.push((*pos, outer_el.clone(), element.clone()));
                            }
                        }
                    }
                }
            }
            // Stable sort on the outer position: rows for one outer element keep
            // their inner-extent order, restoring the nested-loop output order.
            tagged.sort_by_key(|(pos, _, _)| *pos);
            let rows: Vec<(Value, Value)> = tagged.into_iter().map(|(_, a, b)| (a, b)).collect();
            let actual = rows.len();
            return Ok((
                vec![Step::OrderedJoin {
                    outer: p1.clone(),
                    inner: p2.clone(),
                    rows: Arc::new(rows),
                }],
                JoinStats {
                    strategy: JoinStrategy::Reordered,
                    build_rows: indexed,
                    probe_rows: Some(n2),
                    distinct_keys: distinct,
                    max_bucket,
                    estimated_output: Some(estimated),
                    actual_output: Some(actual),
                },
            ));
        }
    }
    // Textual orientation: the outer side scans (already evaluated — reuse the
    // bag), the inner side is hashed.
    let (index, stats) = build_index(p2, &bag2, build_vars, env, Some(n1))?;
    Ok((
        vec![
            Step::Scan {
                pattern: p1.clone(),
                bag: bag1,
            },
            Step::HashJoin {
                pattern: p2.clone(),
                probe_vars: probe_vars.iter().map(|v| v.to_string()).collect(),
                index: Arc::new(index),
            },
        ],
        stats,
    ))
}

/// Group a build-side bag's elements by the values the pattern binds to
/// `build_vars` (a composite key when there are several), collecting the bucket
/// histogram as statistics. Elements the pattern rejects are dropped, exactly as
/// the nested loop would skip them.
fn build_index(
    pattern: &Pattern,
    bag: &Bag,
    build_vars: &[&str],
    env: &Env,
    probe_rows: Option<usize>,
) -> Result<(HashMap<Value, Vec<Value>>, JoinStats), EvalError> {
    let mut index: HashMap<Value, Vec<Value>> = HashMap::new();
    let mut indexed = 0usize;
    for element in bag.iter() {
        let mut scratch = env.clone();
        if match_pattern(pattern, element, &mut scratch)? {
            if let Some(key) = key_from(&scratch, build_vars) {
                index.entry(key).or_default().push(element.clone());
                indexed += 1;
            }
        }
    }
    let distinct = index.len();
    let max_bucket = index.values().map(Vec::len).max().unwrap_or(0);
    let stats = JoinStats {
        strategy: JoinStrategy::Hash,
        build_rows: indexed,
        probe_rows,
        distinct_keys: distinct,
        max_bucket,
        estimated_output: probe_rows.map(|n| n as f64 * indexed as f64 / distinct.max(1) as f64),
        actual_output: None,
    };
    Ok((index, stats))
}

/// The patterns and sources of a chain's generator slots, in textual order.
fn chain_parts<'q>(chain: &Chain, slots: &[Slot<'q>]) -> (Vec<&'q Pattern>, Vec<&'q Expr>) {
    let mut patterns = Vec::with_capacity(chain.len);
    let mut sources = Vec::with_capacity(chain.len);
    for pos in 0..chain.len {
        match &slots[chain.start + pos] {
            Slot::Gen { pattern, source }
            | Slot::Fused {
                pattern, source, ..
            } => {
                patterns.push(*pattern);
                sources.push(*source);
            }
            _ => unreachable!("chain covers only generator slots"),
        }
    }
    (patterns, sources)
}

/// Match each chain generator's prefetched extent once, keeping the original
/// bag position, the element, and the pattern-bound environment for join-key
/// extraction. Both chain planners (bushy and greedy) work off these rows.
fn match_chain_rows(
    patterns: &[&Pattern],
    start: usize,
    bags: &BTreeMap<usize, Bag>,
    env: &Env,
) -> Result<Vec<MatchedRows>, EvalError> {
    let mut matched = Vec::with_capacity(patterns.len());
    for (pos, pattern) in patterns.iter().enumerate() {
        let bag = bags.get(&(start + pos)).expect("prefetched chain source");
        let mut rows = Vec::new();
        for (p, element) in bag.iter().enumerate() {
            let mut scratch = env.clone();
            if match_pattern(pattern, element, &mut scratch)? {
                rows.push((p, element.clone(), scratch));
            }
        }
        matched.push(rows);
    }
    Ok(matched)
}

/// Restore the nested-loop output order — lexicographic on the original bag
/// positions in textual generator order, exactly the order the nested loop
/// enumerates accepted combinations in — and clone out the element values.
fn materialise_chain_rows(matched: &[MatchedRows], mut rows: Vec<Vec<usize>>) -> Vec<Vec<Value>> {
    let m = matched.len();
    rows.sort_by(|a, b| {
        for g in 0..m {
            match matched[g][a[g]].0.cmp(&matched[g][b[g]].0) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    });
    rows.into_iter()
        .map(|row| (0..m).map(|g| matched[g][row[g]].1.clone()).collect())
        .collect()
}

/// Execute a bushy join tree bottom-up over the matched chain extents: a leaf
/// yields one intermediate row per matched element, an internal node hash-joins
/// its two subtrees' rows on the composite key of every predicate crossing the
/// cut (each predicate's endpoints land in different subtrees exactly at their
/// lowest common ancestor, so every predicate is applied exactly once). The
/// smaller input builds the hash index; the final positional sort makes probe
/// order irrelevant. One [`JoinStats`] entry is pushed per internal node, in
/// execution (post-)order.
///
/// Returns `None` as soon as any node's **actual** output exceeds `row_cap`:
/// the enumerator admitted the tree on estimates alone, and key skew can make
/// an estimate arbitrarily optimistic — aborting here keeps plan-time
/// materialisation bounded and lets the caller fall back to the greedy
/// planner.
fn exec_join_tree(
    tree: &JoinTree,
    matched: &[MatchedRows],
    preds: &[ChainPred],
    row_cap: f64,
    stats: &mut Vec<JoinStats>,
) -> Option<Vec<Vec<usize>>> {
    let m = matched.len();
    match tree {
        JoinTree::Leaf(g) => Some(
            (0..matched[*g].len())
                .map(|idx| {
                    let mut row = vec![UNSET; m];
                    row[*g] = idx;
                    row
                })
                .collect(),
        ),
        JoinTree::Join { left, right } => {
            let lrows = exec_join_tree(left, matched, preds, row_cap, stats)?;
            let rrows = exec_join_tree(right, matched, preds, row_cap, stats)?;
            let (lmask, rmask) = (left.leaf_mask(), right.leaf_mask());
            let mut lparts: Vec<(usize, &str)> = Vec::new();
            let mut rparts: Vec<(usize, &str)> = Vec::new();
            for p in preds {
                if lmask & (1 << p.earlier) != 0 && rmask & (1 << p.later) != 0 {
                    lparts.push((p.earlier, &p.earlier_var));
                    rparts.push((p.later, &p.later_var));
                } else if lmask & (1 << p.later) != 0 && rmask & (1 << p.earlier) != 0 {
                    lparts.push((p.later, &p.later_var));
                    rparts.push((p.earlier, &p.earlier_var));
                }
            }
            debug_assert!(!lparts.is_empty(), "enumerated trees never cross-product");
            let (build, bparts, probe, pparts) = if lrows.len() <= rrows.len() {
                (&lrows, &lparts, &rrows, &rparts)
            } else {
                (&rrows, &rparts, &lrows, &lparts)
            };
            let mut index: HashMap<Value, Vec<usize>> = HashMap::new();
            for (i, row) in build.iter().enumerate() {
                if let Some(key) = chain_row_key(matched, row, bparts) {
                    index.entry(key).or_default().push(i);
                }
            }
            let distinct = index.len();
            let max_bucket = index.values().map(Vec::len).max().unwrap_or(0);
            let mut joined = Vec::new();
            for prow in probe {
                let Some(key) = chain_row_key(matched, prow, pparts) else {
                    continue;
                };
                if let Some(matches) = index.get(&key) {
                    for &bi in matches {
                        let mut merged = prow.clone();
                        for (g, idx) in build[bi].iter().enumerate() {
                            if *idx != UNSET {
                                merged[g] = *idx;
                            }
                        }
                        joined.push(merged);
                    }
                }
                if joined.len() as f64 > row_cap {
                    return None; // the estimate was skew-fooled: abort mid-join
                }
            }
            stats.push(JoinStats {
                strategy: JoinStrategy::Bushy {
                    tree: Arc::new(tree.clone()),
                },
                build_rows: build.len(),
                probe_rows: Some(probe.len()),
                distinct_keys: distinct,
                max_bucket,
                estimated_output: Some(
                    probe.len() as f64 * build.len() as f64 / distinct.max(1) as f64,
                ),
                actual_output: Some(joined.len()),
            });
            Some(joined)
        }
    }
}

/// Extract the (composite) join key of an intermediate chain row: each component
/// names a chain position and a variable bound by that position's pattern, looked
/// up in the pattern-bound environment captured when the extent was matched.
fn chain_row_key(matched: &[MatchedRows], row: &[usize], parts: &[(usize, &str)]) -> Option<Value> {
    let mut vals = Vec::with_capacity(parts.len());
    for (g, var) in parts {
        let (_, _, scratch) = &matched[*g][row[*g]];
        vals.push(scratch.get(var)?.clone());
    }
    Some(composite_key(vals))
}

/// Assemble a join key from its component values (single components stay bare so a
/// one-column join key compares exactly like the filter would).
pub(crate) fn composite_key(mut parts: Vec<Value>) -> Value {
    if parts.len() == 1 {
        parts.pop().expect("one component")
    } else {
        Value::tuple(parts)
    }
}

/// If `cond` is `Var(a) = Var(b)` with exactly one side bound by `pattern`, return
/// `(probe_var, build_var)`: the side *not* bound by the pattern probes an index
/// keyed by the side the pattern binds.
fn equi_join_key<'q>(cond: &'q Expr, pattern: &Pattern) -> Option<(&'q str, &'q str)> {
    let Expr::BinOp {
        op: BinOp::Eq,
        lhs,
        rhs,
    } = cond
    else {
        return None;
    };
    let (Expr::Var(a), Expr::Var(b)) = (lhs.as_ref(), rhs.as_ref()) else {
        return None;
    };
    let pattern_vars: BTreeSet<&str> = pattern.bound_vars().into_iter().collect();
    match (
        pattern_vars.contains(a.as_str()),
        pattern_vars.contains(b.as_str()),
    ) {
        (true, false) => Some((b.as_str(), a.as_str())),
        (false, true) => Some((a.as_str(), b.as_str())),
        _ => None,
    }
}

/// If `cond` is a point-equality filter — `Var(v) = ?param` or `Var(v) = literal`
/// (either side order) with `v` in `bound` (the generator's pattern variables) —
/// return `(v, key_expr)`: the indexed variable and the expression whose
/// per-execution value probes the index.
fn point_filter_key<'q>(cond: &'q Expr, bound: &BTreeSet<&str>) -> Option<(&'q str, &'q Expr)> {
    let Expr::BinOp {
        op: BinOp::Eq,
        lhs,
        rhs,
    } = cond
    else {
        return None;
    };
    match (lhs.as_ref(), rhs.as_ref()) {
        (Expr::Var(v), key @ (Expr::Param(_) | Expr::Lit(_))) if bound.contains(v.as_str()) => {
            Some((v.as_str(), key))
        }
        (key @ (Expr::Param(_) | Expr::Lit(_)), Expr::Var(v)) if bound.contains(v.as_str()) => {
            Some((v.as_str(), key))
        }
        _ => None,
    }
}

/// The [`JoinStats`] entry a point-lookup index reports: build-side figures are
/// the index itself; the probe side is unknowable at plan time (one probe per
/// execution, under bindings the plan never sees).
fn point_stats(index: &PointIndex) -> JoinStats {
    JoinStats {
        strategy: JoinStrategy::IndexLookup,
        build_rows: index.rows,
        probe_rows: None,
        distinct_keys: index.buckets.len(),
        max_bucket: index.max_bucket,
        estimated_output: None,
        actual_output: None,
    }
}

/// The summed per-node cardinality a plan *actually* materialised (falling back
/// to the estimate for nodes that do not execute at plan time). Used to pick
/// the winner of a re-optimisation round: joins materialise at plan time, so
/// both candidates' true intermediate work is known.
fn plan_actual_cost(plan: &Plan) -> f64 {
    plan.join_stats
        .iter()
        .map(|s| {
            s.actual_output
                .map(|a| a as f64)
                .or(s.estimated_output)
                .unwrap_or(0.0)
        })
        .sum()
}

/// The cost model's output estimate for a join subtree: the product of its leaf
/// cardinalities and the selectivities of every edge both of whose endpoints lie
/// inside the subtree (the independence assumption the DP enumerates under).
fn tree_est(tree: &JoinTree, cards: &[usize], edges: &[bushy::EdgeSel]) -> f64 {
    let mask = tree.leaf_mask();
    let mut est: f64 = tree.leaves().iter().map(|&g| cards[g] as f64).product();
    for e in edges {
        if mask & (1 << e.a) != 0 && mask & (1 << e.b) != 0 {
            est *= e.selectivity;
        }
    }
    est
}

/// Compare each bushy node's materialised cardinality against what the edge
/// selectivities predicted, producing the observed per-edge selectivities and
/// the worst underestimate ratio. `edges` must be the selectivities the
/// enumeration actually used (including any re-optimisation overrides), so a
/// replanned plan whose estimates now match reality reports low divergence and
/// the feedback loop converges.
///
/// Each internal node's combined crossing-edge selectivity is
/// `actual / (build × probe)`; with `k` edges crossing the node it is
/// distributed as the k-th root per edge (the DP multiplies crossing-edge
/// selectivities independently). Nodes below [`MIN_FEEDBACK_ROWS`] actual rows
/// do not count towards divergence: tiny results make ratios noisy and
/// replanning them saves nothing.
fn bushy_feedback(
    stats: &[JoinStats],
    cards: &[usize],
    edges: &[bushy::EdgeSel],
) -> Option<PlanFeedback> {
    let mut observed: ObservedSelectivities = Vec::new();
    let mut max_divergence = 0.0f64;
    for stat in stats {
        let JoinStrategy::Bushy { tree } = &stat.strategy else {
            continue;
        };
        let Some(actual) = stat.actual_output else {
            continue;
        };
        let est = tree_est(tree, cards, edges).max(f64::MIN_POSITIVE);
        let divergence = actual as f64 / est;
        if actual as f64 >= MIN_FEEDBACK_ROWS {
            max_divergence = max_divergence.max(divergence);
        }
        let JoinTree::Join { left, right } = tree.as_ref() else {
            continue;
        };
        let (lmask, rmask) = (left.leaf_mask(), right.leaf_mask());
        let crossing: Vec<(usize, usize)> = edges
            .iter()
            .filter(|e| {
                (lmask & (1 << e.a) != 0 && rmask & (1 << e.b) != 0)
                    || (lmask & (1 << e.b) != 0 && rmask & (1 << e.a) != 0)
            })
            .map(|e| (e.a.min(e.b), e.a.max(e.b)))
            .collect();
        if crossing.is_empty() {
            continue;
        }
        let inputs = stat.build_rows as f64 * stat.probe_rows.unwrap_or(0) as f64;
        if inputs <= 0.0 {
            continue;
        }
        let combined = (actual as f64 / inputs).min(1.0);
        let per_edge = combined.powf(1.0 / crossing.len() as f64);
        for pair in crossing {
            // Each edge crosses exactly one node (where its endpoints first
            // meet), so this is an insert in practice; replace defensively.
            if let Some(slot) = observed.iter_mut().find(|(p, _)| *p == pair) {
                slot.1 = per_edge;
            } else {
                observed.push((pair, per_edge));
            }
        }
    }
    if observed.is_empty() {
        return None;
    }
    Some(PlanFeedback {
        observed,
        max_divergence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, MapExtents};
    use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
    use std::sync::RwLock;

    fn fixture() -> MapExtents {
        let mut m = MapExtents::new();
        m.insert_keys("protein", vec![1, 2, 3]);
        m.insert_pairs(
            "protein,accession_num",
            vec![(1, "P100"), (2, "P200"), (3, "P300")],
        );
        m.insert_pairs("protein,organism", vec![(1, "human"), (2, "mouse")]);
        m.insert_pairs("peptidehit,score", vec![(10, "55"), (11, "70"), (12, "70")]);
        m
    }

    fn run(query: &str) -> Value {
        let q = parse(query).unwrap();
        Evaluator::new(fixture()).eval_closed(&q).unwrap()
    }

    /// Evaluate with the planner (all optimisations), with reordering disabled,
    /// with sequential fetch, and with nested loops; all four must agree exactly
    /// (including element order).
    fn run_both_ways(query: &str) -> Value {
        let q = parse(query).unwrap();
        let planned = Evaluator::new(fixture()).eval_closed(&q).unwrap();
        let unordered = Evaluator::new(fixture())
            .without_reorder()
            .eval_closed(&q)
            .unwrap();
        let sequential = Evaluator::new(fixture())
            .without_parallel_fetch()
            .eval_closed(&q)
            .unwrap();
        let naive = Evaluator::new(fixture())
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        if let (Value::Bag(p), Value::Bag(n)) = (&planned, &naive) {
            assert_eq!(p.items(), n.items(), "planned vs naive order for {query}");
        } else {
            assert_eq!(planned, naive, "planned vs naive for {query}");
        }
        assert_eq!(planned, unordered, "reorder changed answers for {query}");
        assert_eq!(planned, sequential, "parallel changed answers for {query}");
        planned
    }

    #[test]
    fn params_bind_at_execution_time() {
        let q = parse("[x | {k, x} <- <<protein, accession_num>>; k = ?key]").unwrap();
        let ev = Evaluator::new(fixture());
        for (key, expected) in [(1, "P100"), (2, "P200")] {
            let env = Env::new().with_params(crate::Params::new().with("key", key));
            let v = ev.eval(&q, &env).unwrap();
            assert_eq!(v.expect_bag().unwrap().items(), &[Value::str(expected)]);
        }
        // Unbound parameter: typed error, not a silent empty answer.
        assert_eq!(
            ev.eval(&q, &Env::new()),
            Err(EvalError::UnboundParam("key".into()))
        );
    }

    #[test]
    fn one_plan_serves_every_binding() {
        let extents = fixture();
        let cache = Arc::new(PlanCache::new());
        let ev = Evaluator::new(&extents).with_plan_cache(Arc::clone(&cache));
        // A parameterised join: the filter re-resolves ?org per execution, but
        // the join (and its hash index) is planned once.
        let q = parse(
            "[{a, o} | {k, a} <- <<protein, accession_num>>; {k2, o} <- <<protein, organism>>; \
             k = k2; o = ?org]",
        )
        .unwrap();
        for org in ["human", "mouse", "human", "axolotl"] {
            let env = Env::new().with_params(crate::Params::new().with("org", org));
            ev.eval(&q, &env).unwrap();
        }
        assert_eq!(cache.len(), 1, "one plan per query shape");
        assert_eq!(cache.miss_count(), 1);
        assert_eq!(cache.hit_count(), 3, "every re-binding is a cache hit");
        // And the answers still track the binding.
        let env = Env::new().with_params(crate::Params::new().with("org", "mouse"));
        let bag = ev.eval(&q, &env).unwrap().expect_bag().unwrap();
        assert_eq!(
            bag.items(),
            &[Value::pair(Value::str("P200"), Value::str("mouse"))]
        );
    }

    #[test]
    fn parameterised_sources_are_not_cached() {
        // A parameter inside a *generator source* is evaluated at plan time, so
        // the plan is binding-specific and must bypass the cache.
        let extents = fixture();
        let cache = Arc::new(PlanCache::new());
        let ev = Evaluator::new(&extents).with_plan_cache(Arc::clone(&cache));
        let q = parse("[x | x <- ?bag; y <- <<protein>>; y = x]").unwrap();
        for keys in [vec![1i64, 2], vec![3]] {
            let bag = Bag::from_values(keys.iter().copied().map(Value::Int).collect());
            let env = Env::new().with_params(crate::Params::new().with("bag", Value::Bag(bag)));
            let v = ev.eval(&q, &env).unwrap();
            assert_eq!(v.expect_bag().unwrap().len(), keys.len());
        }
        assert_eq!(cache.len(), 0, "parameterised sources must not be cached");
    }

    #[test]
    fn simple_projection() {
        let v = run("[x | {k, x} <- <<protein, accession_num>>]");
        assert_eq!(
            v,
            Value::Bag(Bag::from_values(vec![
                Value::str("P100"),
                Value::str("P200"),
                Value::str("P300"),
            ]))
        );
    }

    #[test]
    fn paper_style_provenance_tagging() {
        let v = run("[{'PEDRO', k} | k <- <<protein>>]");
        let bag = v.expect_bag().unwrap();
        assert_eq!(bag.len(), 3);
        assert!(bag.contains(&Value::pair(Value::str("PEDRO"), Value::Int(1))));
    }

    #[test]
    fn selection_with_filter() {
        let v = run("[x | {k, x} <- <<protein, accession_num>>; k = 2]");
        assert_eq!(v.expect_bag().unwrap().items(), &[Value::str("P200")]);
    }

    #[test]
    fn join_across_schemes() {
        let v = run_both_ways(
            "[{a, o} | {k, a} <- <<protein, accession_num>>; {k2, o} <- <<protein, organism>>; k = k2]",
        );
        let bag = v.expect_bag().unwrap();
        assert_eq!(bag.len(), 2);
        assert!(bag.contains(&Value::pair(Value::str("P100"), Value::str("human"))));
    }

    #[test]
    fn composite_key_join_matches_naive() {
        // The paper's GAV-rewritten queries join on {source, key} pairs: a run of
        // two equality filters after the generator forms one composite hash key.
        let mut m = MapExtents::new();
        m.insert(
            "acc",
            Bag::from_values(vec![
                Value::tuple(vec![Value::str("PEDRO"), Value::Int(1), Value::str("A")]),
                Value::tuple(vec![Value::str("gpmDB"), Value::Int(1), Value::str("B")]),
                Value::tuple(vec![Value::str("PEDRO"), Value::Int(2), Value::str("C")]),
            ]),
        );
        m.insert(
            "descr",
            Bag::from_values(vec![
                Value::tuple(vec![Value::str("PEDRO"), Value::Int(1), Value::str("d1")]),
                Value::tuple(vec![Value::str("gpmDB"), Value::Int(2), Value::str("d2")]),
                Value::tuple(vec![Value::str("PEDRO"), Value::Int(2), Value::str("d3")]),
            ]),
        );
        let q = parse("[{x, d} | {s, k, x} <- <<acc>>; {s2, k2, d} <- <<descr>>; s2 = s; k2 = k]")
            .unwrap();
        let planned = Evaluator::new(&m).eval_closed(&q).unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        let planned_bag = planned.expect_bag().unwrap();
        assert_eq!(planned_bag.items(), naive.expect_bag().unwrap().items());
        assert_eq!(
            planned_bag.items(),
            &[
                Value::pair(Value::str("A"), Value::str("d1")),
                Value::pair(Value::str("C"), Value::str("d3")),
            ]
        );
    }

    #[test]
    fn join_with_flipped_equality_sides() {
        let v = run_both_ways(
            "[{a, o} | {k, a} <- <<protein, accession_num>>; {k2, o} <- <<protein, organism>>; k2 = k]",
        );
        assert_eq!(v.expect_bag().unwrap().len(), 2);
    }

    #[test]
    fn join_preserves_duplicate_multiplicities() {
        let mut m = MapExtents::new();
        m.insert_pairs("l,v", vec![(1, "a"), (1, "b"), (2, "c")]);
        m.insert_pairs("r,v", vec![(1, "x"), (1, "x"), (3, "y")]);
        let q = parse("[{x, y} | {k1, x} <- <<l, v>>; {k2, y} <- <<r, v>>; k1 = k2]").unwrap();
        let planned = Evaluator::new(&m).eval_closed(&q).unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        let planned_bag = planned.expect_bag().unwrap();
        assert_eq!(planned_bag.items(), naive.expect_bag().unwrap().items());
        // (1,a)x2 + (1,b)x2: key 1 matches both duplicate right rows.
        assert_eq!(planned_bag.len(), 4);
        assert_eq!(
            planned_bag.multiplicity(&Value::pair(Value::str("a"), Value::str("x"))),
            2
        );
    }

    #[test]
    fn three_way_chain_join_agrees_with_naive() {
        let v = run_both_ways(
            "[{a, o, s} | {k, a} <- <<protein, accession_num>>; {k2, o} <- <<protein, organism>>; k = k2; {k3, s} <- <<peptidehit, score>>; k3 = k3]",
        );
        // Every (accession, organism) pair crosses with all three peptide hits.
        assert_eq!(v.expect_bag().unwrap().len(), 6);
    }

    #[test]
    fn correlated_generator_falls_back_to_nested_loops() {
        // The inner generator's source mentions `k` from the outer generator, so the
        // planner must not hoist it.
        let v = run_both_ways("[{k, n} | k <- <<protein>>; n <- [k, k]; n = k]");
        assert_eq!(v.expect_bag().unwrap().len(), 6);
    }

    #[test]
    fn join_key_matches_across_int_and_float() {
        let mut m = MapExtents::new();
        m.insert(
            "l,v",
            Bag::from_values(vec![Value::pair(Value::Int(1), Value::str("a"))]),
        );
        m.insert(
            "r,v",
            Bag::from_values(vec![Value::pair(Value::Float(1.0), Value::str("b"))]),
        );
        let q = parse("[{x, y} | {k1, x} <- <<l, v>>; {k2, y} <- <<r, v>>; k1 = k2]").unwrap();
        let planned = Evaluator::new(&m).eval_closed(&q).unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        assert_eq!(planned, naive);
        assert_eq!(planned.expect_bag().unwrap().len(), 1);
    }

    #[test]
    fn aggregates_over_comprehensions() {
        assert_eq!(run("count [k | k <- <<protein>>]"), Value::Int(3));
        assert_eq!(run("count <<protein>>"), Value::Int(3));
        assert_eq!(run("max [k | k <- <<protein>>]"), Value::Int(3));
    }

    #[test]
    fn bag_union_duplicates_preserved() {
        let v = run("<<protein>> ++ <<protein>>");
        assert_eq!(v.expect_bag().unwrap().len(), 6);
    }

    #[test]
    fn bag_difference() {
        let v = run("<<protein>> -- [k | k <- <<protein>>; k = 1]");
        assert_eq!(v.expect_bag().unwrap().len(), 2);
    }

    #[test]
    fn nested_comprehension_with_correlation() {
        let v = run_both_ways(
            "[{k, count [s | {k2, s} <- <<peptidehit, score>>; k2 = k]} | k <- [10, 11, 99]]",
        );
        let bag = v.expect_bag().unwrap();
        assert!(bag.contains(&Value::pair(Value::Int(10), Value::Int(1))));
        assert!(bag.contains(&Value::pair(Value::Int(99), Value::Int(0))));
    }

    #[test]
    fn let_and_if() {
        assert_eq!(
            run("let n = count <<protein>> in if n > 2 then 'many' else 'few'"),
            Value::str("many")
        );
    }

    #[test]
    fn binding_qualifier() {
        let v = run("[{k, n} | k <- <<protein>>; let n = k * 10; n > 10]");
        let bag = v.expect_bag().unwrap();
        assert_eq!(bag.len(), 2);
        assert!(bag.contains(&Value::pair(Value::Int(3), Value::Int(30))));
    }

    #[test]
    fn literal_pattern_in_generator_filters() {
        let mut m = MapExtents::new();
        m.insert(
            "uprotein",
            Bag::from_values(vec![
                Value::pair(Value::str("PEDRO"), Value::Int(1)),
                Value::pair(Value::str("gpmDB"), Value::Int(2)),
            ]),
        );
        let q = parse("[k | {'PEDRO', k} <- <<uprotein>>]").unwrap();
        let v = Evaluator::new(m).eval_closed(&q).unwrap();
        assert_eq!(v.expect_bag().unwrap().items(), &[Value::Int(1)]);
    }

    #[test]
    fn literal_pattern_in_hash_joined_generator_filters() {
        let mut m = MapExtents::new();
        m.insert_keys("keys", vec![1, 2]);
        m.insert(
            "uprotein,acc",
            Bag::from_values(vec![
                Value::tuple(vec![Value::str("PEDRO"), Value::Int(1), Value::str("A")]),
                Value::tuple(vec![Value::str("gpmDB"), Value::Int(1), Value::str("B")]),
                Value::tuple(vec![Value::str("PEDRO"), Value::Int(2), Value::str("C")]),
            ]),
        );
        let q =
            parse("[x | k <- <<keys>>; {'PEDRO', k2, x} <- <<uprotein, acc>>; k2 = k]").unwrap();
        let planned = Evaluator::new(&m).eval_closed(&q).unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        assert_eq!(planned, naive);
        assert_eq!(
            planned.expect_bag().unwrap().items(),
            &[Value::str("A"), Value::str("C")]
        );
    }

    #[test]
    fn range_evaluates_to_lower_bound() {
        assert_eq!(run("Range Void Any"), Value::Void);
        let v = run("Range [k | k <- <<protein>>] Any");
        assert_eq!(v.expect_bag().unwrap().len(), 3);
    }

    #[test]
    fn arithmetic_and_strings() {
        assert_eq!(run("1 + 2 * 3"), Value::Int(7));
        assert_eq!(run("7 / 2"), Value::Int(3));
        assert_eq!(run("7.0 / 2"), Value::Float(3.5));
        assert_eq!(run("'a' + 'b'"), Value::str("ab"));
        assert_eq!(run("-(3)"), Value::Int(-3));
    }

    #[test]
    fn division_by_zero_reported() {
        let q = parse("1 / 0").unwrap();
        assert_eq!(
            Evaluator::new(NoExtents).eval_closed(&q),
            Err(EvalError::DivisionByZero)
        );
    }

    #[test]
    fn unbound_variable_reported() {
        let q = parse("missing + 1").unwrap();
        assert!(matches!(
            Evaluator::new(NoExtents).eval_closed(&q),
            Err(EvalError::UnboundVariable(_))
        ));
    }

    #[test]
    fn boolean_short_circuit() {
        // The right operand would divide by zero; `and` must not evaluate it.
        assert_eq!(run("false and (1 / 0 = 1)"), Value::Bool(false));
        assert_eq!(run("true or (1 / 0 = 1)"), Value::Bool(true));
        assert_eq!(run("not false"), Value::Bool(true));
    }

    #[test]
    fn comparisons() {
        assert_eq!(run("2 < 3"), Value::Bool(true));
        assert_eq!(run("'abc' <> 'abd'"), Value::Bool(true));
        assert_eq!(run("3 >= 3"), Value::Bool(true));
    }

    // ---------- statistics-driven reordering ----------

    /// A fixture where the textual join order is wrong: the outer extent is tiny
    /// and the inner extent is large, so the planner should hash the outer side.
    fn skewed_fixture() -> MapExtents {
        let mut m = MapExtents::new();
        m.insert_pairs("small,v", vec![(1, "a"), (2, "b"), (2, "b2")]);
        m.insert(
            "big,v",
            Bag::from_values(
                (0..200)
                    .map(|i| Value::pair(Value::Int(i % 5), Value::str(format!("x{i}"))))
                    .collect(),
            ),
        );
        m
    }

    #[test]
    fn reordered_join_picks_smaller_build_side_and_preserves_order() {
        let m = skewed_fixture();
        let q =
            parse("[{x, y} | {k1, x} <- <<small, v>>; {k2, y} <- <<big, v>>; k2 = k1]").unwrap();
        let planned = Evaluator::new(&m).eval_closed(&q).unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        assert_eq!(
            planned.expect_bag().unwrap().items(),
            naive.expect_bag().unwrap().items(),
            "reordered join must preserve nested-loop output order"
        );
        let stats = Evaluator::new(&m).explain(&q, &Env::new()).unwrap();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].strategy, JoinStrategy::Reordered);
        assert_eq!(stats[0].build_rows, 3, "small side builds the hash index");
        assert_eq!(stats[0].probe_rows, Some(200));
        assert_eq!(stats[0].distinct_keys, 2);
        assert_eq!(stats[0].max_bucket, 2);
    }

    #[test]
    fn textual_order_kept_when_outer_is_bigger() {
        let m = skewed_fixture();
        let q =
            parse("[{x, y} | {k1, x} <- <<big, v>>; {k2, y} <- <<small, v>>; k2 = k1]").unwrap();
        let stats = Evaluator::new(&m).explain(&q, &Env::new()).unwrap();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].strategy, JoinStrategy::Hash);
        assert_eq!(stats[0].build_rows, 3, "small side still builds the index");
        let planned = Evaluator::new(&m).eval_closed(&q).unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        assert_eq!(
            planned.expect_bag().unwrap().items(),
            naive.expect_bag().unwrap().items()
        );
    }

    #[test]
    fn reorder_abandoned_when_output_estimate_explodes() {
        // Every key is identical: the join is a near-cross-product, the output
        // estimate blows past the cap and the planner must keep textual order.
        let mut m = MapExtents::new();
        m.insert(
            "l,v",
            Bag::from_values(
                (0..40)
                    .map(|i| Value::pair(Value::Int(1), Value::str(format!("l{i}"))))
                    .collect(),
            ),
        );
        m.insert(
            "r,v",
            Bag::from_values(
                (0..90)
                    .map(|i| Value::pair(Value::Int(1), Value::str(format!("r{i}"))))
                    .collect(),
            ),
        );
        let q = parse("[{x, y} | {k1, x} <- <<l, v>>; {k2, y} <- <<r, v>>; k2 = k1]").unwrap();
        let stats = Evaluator::new(&m).explain(&q, &Env::new()).unwrap();
        assert_eq!(stats[0].strategy, JoinStrategy::Hash);
        assert!(stats[0].estimated_output.unwrap() > 3600.0 - 1.0);
        let planned = Evaluator::new(&m).eval_closed(&q).unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        assert_eq!(
            planned.expect_bag().unwrap().items(),
            naive.expect_bag().unwrap().items()
        );
    }

    #[test]
    fn reordered_composite_key_join_agrees_with_naive() {
        let mut m = MapExtents::new();
        m.insert(
            "acc",
            Bag::from_values(vec![
                Value::tuple(vec![Value::str("PEDRO"), Value::Int(1), Value::str("A")]),
                Value::tuple(vec![Value::str("gpmDB"), Value::Int(2), Value::str("B")]),
            ]),
        );
        m.insert(
            "descr",
            Bag::from_values(
                (0..50)
                    .map(|i| {
                        Value::tuple(vec![
                            Value::str(if i % 2 == 0 { "PEDRO" } else { "gpmDB" }),
                            Value::Int(i % 4),
                            Value::str(format!("d{i}")),
                        ])
                    })
                    .collect(),
            ),
        );
        let q = parse("[{x, d} | {s, k, x} <- <<acc>>; {s2, k2, d} <- <<descr>>; s2 = s; k2 = k]")
            .unwrap();
        let stats = Evaluator::new(&m).explain(&q, &Env::new()).unwrap();
        assert_eq!(stats[0].strategy, JoinStrategy::Reordered);
        let planned = Evaluator::new(&m).eval_closed(&q).unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        assert_eq!(
            planned.expect_bag().unwrap().items(),
            naive.expect_bag().unwrap().items()
        );
    }

    // ---------- whole-chain (join graph) reordering ----------

    /// A fixture whose textual generator order is maximally wrong for a 3-chain:
    /// the biggest extent leads and the smallest comes last.
    fn chain_fixture() -> MapExtents {
        let mut m = MapExtents::new();
        m.insert(
            "big,v",
            Bag::from_values(
                (0..120)
                    .map(|i| Value::pair(Value::Int(i % 6), Value::str(format!("b{i}"))))
                    .collect(),
            ),
        );
        m.insert(
            "mid,v",
            Bag::from_values(
                (0..30)
                    .map(|i| Value::pair(Value::Int(i % 6), Value::str(format!("m{i}"))))
                    .collect(),
            ),
        );
        m.insert_pairs("small,v", vec![(0, "s0"), (1, "s1"), (2, "s2")]);
        m
    }

    const CHAIN_Q: &str = "[{x, y, z} | {k1, x} <- <<big, v>>; {k2, y} <- <<mid, v>>; k2 = k1; {k3, z} <- <<small, v>>; k3 = k2]";

    #[test]
    fn three_chain_reorders_bushy_and_preserves_order() {
        let m = chain_fixture();
        let q = parse(CHAIN_Q).unwrap();
        let stats = Evaluator::new(&m).explain(&q, &Env::new()).unwrap();
        assert_eq!(stats.len(), 2, "a 3-chain joins two tree nodes");
        assert!(
            stats
                .iter()
                .all(|s| matches!(s.strategy, JoinStrategy::Bushy { .. })),
            "whole chain must go through the bushy enumerator: {stats:?}"
        );
        // The enumerator joins the small and mid extents before touching big:
        // the 3-row extent builds the first hash index.
        assert_eq!(stats[0].build_rows, 3);
        let JoinStrategy::Bushy { tree } = &stats[1].strategy else {
            unreachable!("checked above");
        };
        assert_eq!(tree.leaves(), vec![0, 1, 2], "root spans the whole chain");
        let planned = Evaluator::new(&m).eval_closed(&q).unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        assert_eq!(
            planned.expect_bag().unwrap().items(),
            naive.expect_bag().unwrap().items(),
            "multiway join must preserve nested-loop output order"
        );
        assert!(!planned.expect_bag().unwrap().is_empty());
    }

    #[test]
    fn chain_joining_back_to_first_generator_agrees_with_naive() {
        // The third generator joins to the FIRST, not its predecessor: the join
        // graph is a star, which the old leading-pair reorder could not see.
        let m = chain_fixture();
        let q = parse(
            "[{x, y, z} | {k1, x} <- <<big, v>>; {k2, y} <- <<mid, v>>; k2 = k1; {k3, z} <- <<small, v>>; k3 = k1]",
        )
        .unwrap();
        let stats = Evaluator::new(&m).explain(&q, &Env::new()).unwrap();
        assert!(stats
            .iter()
            .all(|s| matches!(s.strategy, JoinStrategy::Bushy { .. })));
        let planned = Evaluator::new(&m).eval_closed(&q).unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        assert_eq!(
            planned.expect_bag().unwrap().items(),
            naive.expect_bag().unwrap().items()
        );
    }

    #[test]
    fn chain_bails_to_pair_planning_when_estimate_explodes() {
        // Single-key extents: every chain estimate is a near-cross-product, so
        // the multiway planner bails and the pair planner (which also bails to
        // textual orientation) takes over. Answers must still match naive.
        let mut m = MapExtents::new();
        for (name, n) in [("a,v", 25usize), ("b,v", 30), ("c,v", 35)] {
            m.insert(
                name,
                Bag::from_values(
                    (0..n)
                        .map(|i| Value::pair(Value::Int(1), Value::str(format!("{name}{i}"))))
                        .collect(),
                ),
            );
        }
        let q = parse(
            "[{x, y, z} | {k1, x} <- <<a, v>>; {k2, y} <- <<b, v>>; k2 = k1; {k3, z} <- <<c, v>>; k3 = k2]",
        )
        .unwrap();
        let stats = Evaluator::new(&m).explain(&q, &Env::new()).unwrap();
        assert!(
            stats.iter().all(|s| s.strategy != JoinStrategy::Multiway
                && !matches!(s.strategy, JoinStrategy::Bushy { .. })),
            "exploding estimates must abandon the chain reorder: {stats:?}"
        );
        let planned = Evaluator::new(&m).eval_closed(&q).unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        assert_eq!(
            planned.expect_bag().unwrap().items(),
            naive.expect_bag().unwrap().items()
        );
    }

    #[test]
    fn chain_with_composite_keys_agrees_with_naive() {
        let mut m = MapExtents::new();
        m.insert(
            "acc",
            Bag::from_values(
                (0..40)
                    .map(|i| {
                        Value::tuple(vec![
                            Value::str(if i % 2 == 0 { "PEDRO" } else { "gpmDB" }),
                            Value::Int(i % 5),
                            Value::str(format!("a{i}")),
                        ])
                    })
                    .collect(),
            ),
        );
        m.insert(
            "descr",
            Bag::from_values(
                (0..12)
                    .map(|i| {
                        Value::tuple(vec![
                            Value::str(if i % 2 == 0 { "PEDRO" } else { "gpmDB" }),
                            Value::Int(i % 5),
                            Value::str(format!("d{i}")),
                        ])
                    })
                    .collect(),
            ),
        );
        m.insert_pairs("org,v", vec![(0, "human"), (1, "mouse"), (2, "yeast")]);
        let q = parse(
            "[{x, d, o} | {s, k, x} <- <<acc>>; {s2, k2, d} <- <<descr>>; s2 = s; k2 = k; {k3, o} <- <<org, v>>; k3 = k]",
        )
        .unwrap();
        let planned = Evaluator::new(&m).eval_closed(&q).unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        assert_eq!(
            planned.expect_bag().unwrap().items(),
            naive.expect_bag().unwrap().items()
        );
    }

    #[test]
    fn four_chain_agrees_with_naive() {
        let m = chain_fixture();
        let q = parse(
            "[{x, y, z, w} | {k1, x} <- <<big, v>>; {k2, y} <- <<mid, v>>; k2 = k1; {k3, z} <- <<small, v>>; k3 = k2; {k4, w} <- <<small, v>>; k4 = k1]",
        )
        .unwrap();
        let planned = Evaluator::new(&m).eval_closed(&q).unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        assert_eq!(
            planned.expect_bag().unwrap().items(),
            naive.expect_bag().unwrap().items()
        );
    }

    #[test]
    fn chain_histograms_are_persisted_and_reused() {
        let m = chain_fixture();
        let cache = Arc::new(PlanCache::new());
        let ev = Evaluator::new(&m).with_plan_cache(Arc::clone(&cache));
        let q = parse(CHAIN_Q).unwrap();
        ev.eval_closed(&q).unwrap();
        let after_first = cache.histogram_count();
        assert!(
            after_first > 0,
            "chain planning must persist per-extent key histograms"
        );
        // A *different* query over the same extents and keys replans but reuses
        // the persisted histograms rather than recomputing them.
        let q2 = parse(
            "[{y, x, z} | {k1, x} <- <<big, v>>; {k2, y} <- <<mid, v>>; k2 = k1; {k3, z} <- <<small, v>>; k3 = k2]",
        )
        .unwrap();
        let planned = ev.eval_closed(&q2).unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q2)
            .unwrap();
        assert_eq!(planned, naive);
        assert_eq!(
            cache.histogram_count(),
            after_first,
            "same extents and keys: no new histograms needed"
        );
    }

    // ---------- bushy join enumeration ----------

    #[test]
    fn without_bushy_falls_back_to_greedy_multiway() {
        let m = chain_fixture();
        let q = parse(CHAIN_Q).unwrap();
        let stats = Evaluator::new(&m)
            .without_bushy()
            .explain(&q, &Env::new())
            .unwrap();
        assert!(
            stats.iter().all(|s| s.strategy == JoinStrategy::Multiway),
            "bushy disabled: the greedy join-graph reorder must run: {stats:?}"
        );
        let planned = Evaluator::new(&m).without_bushy().eval_closed(&q).unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        assert_eq!(
            planned.expect_bag().unwrap().items(),
            naive.expect_bag().unwrap().items()
        );
    }

    /// A 4-chain whose middle join keeps everything while the two outer joins
    /// are selective: the cheapest plan joins the two ends separately and
    /// combines them last — a genuinely bushy shape no linear order matches.
    fn bushy_fixture() -> (MapExtents, Expr) {
        let mut m = MapExtents::new();
        m.insert(
            "a,v",
            Bag::from_values(
                (0..30)
                    .map(|i| Value::pair(Value::Int(i), Value::str(format!("a{i}"))))
                    .collect(),
            ),
        );
        m.insert(
            "b,v",
            Bag::from_values(
                (0..4)
                    .map(|i| {
                        Value::tuple(vec![
                            Value::Int(i * 7 % 30),
                            Value::Int(1),
                            Value::str(format!("b{i}")),
                        ])
                    })
                    .collect(),
            ),
        );
        m.insert(
            "c,v",
            Bag::from_values(
                (0..4)
                    .map(|i| {
                        Value::tuple(vec![
                            Value::Int(1),
                            Value::Int(10 + i),
                            Value::str(format!("c{i}")),
                        ])
                    })
                    .collect(),
            ),
        );
        m.insert(
            "d,v",
            Bag::from_values(
                (0..30)
                    .map(|i| Value::pair(Value::Int(i), Value::str(format!("d{i}"))))
                    .collect(),
            ),
        );
        let q = parse(
            "[{x, y, z, w} | {k1, x} <- <<a, v>>; {k2, m1, y} <- <<b, v>>; k2 = k1; \
             {m2, k3, z} <- <<c, v>>; m2 = m1; {k4, w} <- <<d, v>>; k4 = k3]",
        )
        .unwrap();
        (m, q)
    }

    #[test]
    fn genuinely_bushy_tree_executes_and_matches_naive() {
        let (m, q) = bushy_fixture();
        let stats = Evaluator::new(&m).explain(&q, &Env::new()).unwrap();
        assert_eq!(stats.len(), 3, "a 4-chain tree has three join nodes");
        let JoinStrategy::Bushy { tree } = &stats.last().unwrap().strategy else {
            panic!("expected a bushy plan: {stats:?}");
        };
        assert!(
            !tree.is_linear(),
            "outer-selective chain must produce a genuinely bushy tree, got {tree}"
        );
        assert_eq!(tree.leaves(), vec![0, 1, 2, 3]);
        let planned = Evaluator::new(&m).eval_closed(&q).unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        assert_eq!(
            planned.expect_bag().unwrap().items(),
            naive.expect_bag().unwrap().items(),
            "bushy execution must preserve nested-loop output order"
        );
        assert_eq!(planned.expect_bag().unwrap().len(), 16);
    }

    #[test]
    fn bushy_plans_are_cached_and_version_guarded() {
        let (mut m, q) = bushy_fixture();
        let cache = Arc::new(PlanCache::new());
        let before = Evaluator::new(&m)
            .with_plan_cache(Arc::clone(&cache))
            .eval_closed(&q)
            .unwrap();
        assert_eq!(cache.len(), 1, "the bushy plan must be stored");
        let again = Evaluator::new(&m)
            .with_plan_cache(Arc::clone(&cache))
            .eval_closed(&q)
            .unwrap();
        assert_eq!(before, again);
        assert!(
            cache.hit_count() >= 1,
            "the re-run must be served from the cache"
        );
        // Mutating the provider bumps its version; the stale bushy plan (with
        // its baked-in materialised rows) must be rebuilt, not served.
        m.insert(
            "d,v",
            Bag::from_values(
                (0..30)
                    .map(|i| Value::pair(Value::Int(i / 2), Value::str(format!("d{i}"))))
                    .collect(),
            ),
        );
        let after = Evaluator::new(&m)
            .with_plan_cache(Arc::clone(&cache))
            .eval_closed(&q)
            .unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        assert_eq!(
            after.expect_bag().unwrap().items(),
            naive.expect_bag().unwrap().items(),
            "rebuilt plan must reflect the mutated provider"
        );
        assert_ne!(before, after, "the mutation changes the answer");
    }

    #[test]
    fn bushy_bails_when_skew_betrays_the_estimate() {
        // Three extents whose join column has 21 distinct keys — but one heavy
        // bucket holds 80 of the 100 rows. The `1/max(distinct)` estimate
        // admits the tree (every node estimate is under the cap), while the
        // actual first join materialises 80·80 + 20 rows, well past it. The
        // executor's actual-count guard must abort and fall back to the
        // greedy planner; answers still match the nested-loop oracle.
        let mut m = MapExtents::new();
        for name in ["a,v", "b,v", "c,v"] {
            m.insert(
                name,
                Bag::from_values(
                    (0..100)
                        .map(|i| {
                            let key = if i < 80 { 0 } else { i - 79 };
                            Value::pair(Value::Int(key), Value::str(format!("{name}{i}")))
                        })
                        .collect(),
                ),
            );
        }
        let q = parse(
            "[{x, y, z} | {k1, x} <- <<a, v>>; {k2, y} <- <<b, v>>; k2 = k1; {k3, z} <- <<c, v>>; k3 = k2]",
        )
        .unwrap();
        let stats = Evaluator::new(&m).explain(&q, &Env::new()).unwrap();
        assert!(
            stats
                .iter()
                .all(|s| !matches!(s.strategy, JoinStrategy::Bushy { .. })),
            "skew-blown actual cardinalities must abort the bushy plan: {stats:?}"
        );
        let planned = Evaluator::new(&m).eval_closed(&q).unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        assert_eq!(
            planned.expect_bag().unwrap().items(),
            naive.expect_bag().unwrap().items()
        );
    }

    #[test]
    fn chains_past_the_dp_bound_use_the_greedy_reorder() {
        let mut m = MapExtents::new();
        for i in 0..7 {
            m.insert_pairs(
                format!("s{i},v"),
                (0..3).map(|k| (k, "w")).collect::<Vec<_>>(),
            );
        }
        let mut quals = vec!["{k0, v0} <- <<s0, v>>".to_string()];
        for i in 1..7 {
            quals.push(format!("{{k{i}, v{i}}} <- <<s{i}, v>>"));
            quals.push(format!("k{i} = k{}", i - 1));
        }
        let text = format!("[{{v0, v6}} | {}]", quals.join("; "));
        let q = parse(&text).unwrap();
        let stats = Evaluator::new(&m).explain(&q, &Env::new()).unwrap();
        assert_eq!(stats.len(), 6, "seven generators join six edges");
        assert!(
            stats.iter().all(|s| s.strategy == JoinStrategy::Multiway),
            "chains past MAX_DP_RELATIONS must use the greedy reorder: {stats:?}"
        );
        let planned = Evaluator::new(&m).eval_closed(&q).unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        assert_eq!(
            planned.expect_bag().unwrap().items(),
            naive.expect_bag().unwrap().items()
        );
    }

    #[test]
    fn step_probe_counts_match_explained_strategies() {
        let (m, q) = bushy_fixture();
        let probe = Arc::new(StepProbe::new());
        Evaluator::new(&m)
            .with_step_probe(Arc::clone(&probe))
            .eval_closed(&q)
            .unwrap();
        assert_eq!(probe.count(StepKind::BushyJoin), 1);
        assert_eq!(probe.count(StepKind::MultiJoin), 0);
        assert_eq!(probe.count(StepKind::OrderedJoin), 0);
        // Greedy leg: the same query without bushy runs a MultiJoin instead.
        let probe2 = Arc::new(StepProbe::new());
        Evaluator::new(&m)
            .without_bushy()
            .with_step_probe(Arc::clone(&probe2))
            .eval_closed(&q)
            .unwrap();
        assert_eq!(probe2.count(StepKind::BushyJoin), 0);
        assert_eq!(probe2.count(StepKind::MultiJoin), 1);
    }

    // ---------- plan caching ----------

    #[test]
    fn plan_cache_hits_on_rerun_and_skips_replanning() {
        let m = fixture();
        let cache = Arc::new(PlanCache::new());
        let ev = Evaluator::new(&m).with_plan_cache(Arc::clone(&cache));
        let q = parse(
            "[{a, o} | {k, a} <- <<protein, accession_num>>; {k2, o} <- <<protein, organism>>; k = k2]",
        )
        .unwrap();
        let first = ev.eval_closed(&q).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hit_count(), 0);
        let second = ev.eval_closed(&q).unwrap();
        assert_eq!(first, second);
        assert_eq!(cache.hit_count(), 1);
        // A fresh evaluator over the same provider shares the cached plan.
        let ev2 = Evaluator::new(&m).with_plan_cache(Arc::clone(&cache));
        assert_eq!(ev2.eval_closed(&q).unwrap(), first);
        assert_eq!(cache.hit_count(), 2);
    }

    #[test]
    fn plan_cache_invalidated_by_provider_version_change() {
        let mut m = fixture();
        let cache = Arc::new(PlanCache::new());
        let q = parse(
            "[{a, o} | {k, a} <- <<protein, accession_num>>; {k2, o} <- <<protein, organism>>; k = k2]",
        )
        .unwrap();
        let before = Evaluator::new(&m)
            .with_plan_cache(Arc::clone(&cache))
            .eval_closed(&q)
            .unwrap();
        assert_eq!(before.expect_bag().unwrap().len(), 2);
        // Mutating the provider bumps its version; the stale plan must not serve.
        m.insert_pairs(
            "protein,organism",
            vec![(1, "human"), (2, "mouse"), (3, "yeast")],
        );
        let after = Evaluator::new(&m)
            .with_plan_cache(Arc::clone(&cache))
            .eval_closed(&q)
            .unwrap();
        assert_eq!(after.expect_bag().unwrap().len(), 3);
    }

    #[test]
    fn correlated_nested_comprehensions_are_cacheable_only_when_closed() {
        let m = fixture();
        let cache = Arc::new(PlanCache::new());
        let ev = Evaluator::new(&m).with_plan_cache(Arc::clone(&cache));
        // The inner comprehension's generator source mentions the outer variable k:
        // its plan bakes in no data (plain iterate + filter), so it may cache, and
        // re-running per outer row must keep per-row answers correct.
        let q = parse(
            "[{k, count [s | {k2, s} <- <<peptidehit, score>>; k2 = k]} | k <- [10, 11, 99]]",
        )
        .unwrap();
        let v = ev.eval_closed(&q).unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        assert_eq!(v, naive);
        // An env-dependent *fused* source must never be stored: craft one where the
        // join build side mentions an outer variable.
        let q2 = parse("[{k, x} | k <- <<protein>>; x <- [n | n <- [k]]; x = k]").unwrap();
        let v2 = ev.eval_closed(&q2).unwrap();
        let naive2 = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q2)
            .unwrap();
        assert_eq!(v2, naive2);
    }

    #[test]
    fn plan_cache_explicit_invalidation_hook() {
        let m = fixture();
        let cache = Arc::new(PlanCache::new());
        let ev = Evaluator::new(&m).with_plan_cache(Arc::clone(&cache));
        let q = parse(
            "[{a, o} | {k, a} <- <<protein, accession_num>>; {k2, o} <- <<protein, organism>>; k = k2]",
        )
        .unwrap();
        ev.eval_closed(&q).unwrap();
        assert!(!cache.is_empty());
        cache.invalidate_all();
        assert!(cache.is_empty());
        ev.eval_closed(&q).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn plan_cache_respects_lru_capacity_and_never_serves_wrong_plans() {
        let m = fixture();
        let cache = Arc::new(PlanCache::with_capacity(2));
        let ev = Evaluator::new(&m).with_plan_cache(Arc::clone(&cache));
        let queries: Vec<Expr> = (1..=4)
            .map(|k| {
                parse(&format!(
                    "[x | {{k, x}} <- <<protein, accession_num>>; k = {k}]"
                ))
                .unwrap()
            })
            .collect();
        for q in &queries {
            ev.eval_closed(q).unwrap();
            assert!(cache.len() <= 2, "cache must never exceed its capacity");
        }
        assert_eq!(cache.capacity(), 2);
        assert!(cache.eviction_count() >= 2);
        // Every query still answers correctly after (and despite) evictions.
        for (i, q) in queries.iter().enumerate() {
            let v = ev.eval_closed(q).unwrap();
            let expected = if i < 3 { 1 } else { 0 }; // keys 1..3 exist, 4 doesn't
            assert_eq!(v.expect_bag().unwrap().len(), expected, "query {i}");
        }
    }

    #[test]
    fn evicted_then_refetched_plans_respect_provider_version() {
        // Fill a tiny cache so the join plan is evicted, mutate the provider,
        // then re-run: the rebuilt plan must see the new data.
        let mut m = fixture();
        let cache = Arc::new(PlanCache::with_capacity(1));
        let join = parse(
            "[{a, o} | {k, a} <- <<protein, accession_num>>; {k2, o} <- <<protein, organism>>; k = k2]",
        )
        .unwrap();
        let filler = parse("[x | {k, x} <- <<protein, accession_num>>; k = 1]").unwrap();
        let ev = Evaluator::new(&m).with_plan_cache(Arc::clone(&cache));
        assert_eq!(
            ev.eval_closed(&join).unwrap().expect_bag().unwrap().len(),
            2
        );
        ev.eval_closed(&filler).unwrap(); // evicts the join plan (capacity 1)
        assert_eq!(cache.len(), 1);
        m.insert_pairs(
            "protein,organism",
            vec![(1, "human"), (2, "mouse"), (3, "yeast")],
        );
        let ev = Evaluator::new(&m).with_plan_cache(Arc::clone(&cache));
        assert_eq!(
            ev.eval_closed(&join).unwrap().expect_bag().unwrap().len(),
            3,
            "rebuilt plan must reflect the mutated provider"
        );
    }

    #[test]
    fn explain_reports_no_joins_for_selections() {
        let m = fixture();
        let q = parse("[x | {k, x} <- <<protein, accession_num>>; k = 2]").unwrap();
        assert!(Evaluator::new(&m)
            .explain(&q, &Env::new())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn parallel_fetch_reports_first_error_in_qualifier_order() {
        // Two fused sources, both unknown: the error must deterministically be the
        // textually first one, with or without parallel fetch.
        let mut fixture_one = MapExtents::new();
        fixture_one.insert_keys("keys", vec![1]);
        let q = parse(
            "[{a, b} | k <- <<keys>>; {k2, a} <- <<missing1>>; k2 = k; {k3, b} <- <<missing2>>; k3 = k]",
        )
        .unwrap();
        let parallel_err = Evaluator::new(&fixture_one).eval_closed(&q).unwrap_err();
        let sequential_err = Evaluator::new(&fixture_one)
            .without_parallel_fetch()
            .eval_closed(&q)
            .unwrap_err();
        assert_eq!(parallel_err, sequential_err);
        assert!(
            matches!(&parallel_err, EvalError::UnknownScheme(s) if s.key() == "missing1"),
            "expected missing1 first, got {parallel_err:?}"
        );
    }

    /// An append-only provider: bags only ever grow at the tail, mirroring the
    /// relational store's memoised extents. Exercises the copy-on-write
    /// maintenance paths (index refresh, histogram refresh) that
    /// [`MapExtents`] — whose inserts replace whole bags — never takes.
    struct AppendOnly {
        extents: RwLock<BTreeMap<String, Arc<Bag>>>,
        version: AtomicU64,
    }

    impl AppendOnly {
        fn new() -> Self {
            AppendOnly {
                extents: RwLock::new(BTreeMap::new()),
                version: AtomicU64::new(0),
            }
        }

        fn append_pairs(&self, key: &str, pairs: Vec<(i64, &str)>) {
            let mut guard = self.extents.write().unwrap();
            let entry = guard
                .entry(key.to_string())
                .or_insert_with(|| Arc::new(Bag::empty()));
            let bag = Arc::make_mut(entry);
            for (k, v) in pairs {
                bag.push(Value::pair(Value::Int(k), Value::str(v)));
            }
            self.version.fetch_add(1, AtomicOrdering::Relaxed);
        }
    }

    impl ExtentProvider for AppendOnly {
        fn extent(&self, scheme: &SchemeRef) -> Result<Arc<Bag>, EvalError> {
            self.extents
                .read()
                .unwrap()
                .get(&scheme.key())
                .cloned()
                .ok_or(EvalError::UnknownScheme(scheme.clone()))
        }

        fn version(&self) -> u64 {
            self.version.load(AtomicOrdering::Relaxed)
        }

        fn extents_append_only(&self) -> bool {
            true
        }
    }

    #[test]
    fn point_lookup_serves_params_and_literals_from_one_index() {
        let extents = fixture();
        let store = Arc::new(IndexStore::new());
        let ev = Evaluator::new(&extents).with_index_store(Arc::clone(&store));
        let naive = Evaluator::new(&extents).with_nested_loops();
        // Parameterised point lookup: one index, probed per binding.
        let q = parse("[x | {k, x} <- <<protein, accession_num>>; k = ?key]").unwrap();
        for key in [1, 2, 3, 7, 2] {
            let env = Env::new().with_params(crate::Params::new().with("key", key));
            let got = ev.eval(&q, &env).unwrap();
            let want = naive.eval(&q, &env).unwrap();
            assert_eq!(
                got.expect_bag().unwrap().items(),
                want.expect_bag().unwrap().items(),
                "indexed vs naive for key {key}"
            );
        }
        assert_eq!(store.build_count(), 1, "one index build for the shape");
        assert_eq!(store.hit_count(), 4, "later executions probe the index");
        // A literal filter over the same (source, pattern, var) shares the index.
        let q_lit = parse("[x | {k, x} <- <<protein, accession_num>>; 2 = k]").unwrap();
        let got = ev.eval_closed(&q_lit).unwrap();
        assert_eq!(
            got.expect_bag().unwrap().items(),
            naive
                .eval_closed(&q_lit)
                .unwrap()
                .expect_bag()
                .unwrap()
                .items()
        );
        assert_eq!(store.build_count(), 1, "literal probe reuses the index");
    }

    #[test]
    fn composite_point_lookup_preserves_order_and_multiplicity() {
        let mut m = MapExtents::new();
        // Duplicate (k, v) rows: bucket order must reproduce source order and
        // keep both copies.
        m.insert(
            "mm",
            Bag::from_values(vec![
                Value::tuple(vec![Value::Int(1), Value::str("a"), Value::str("x")]),
                Value::tuple(vec![Value::Int(2), Value::str("b"), Value::str("y")]),
                Value::tuple(vec![Value::Int(1), Value::str("a"), Value::str("z")]),
                Value::tuple(vec![Value::Int(1), Value::str("c"), Value::str("w")]),
            ]),
        );
        let q = parse("[t | {k, s, t} <- <<mm>>; k = ?k; s = 'a']").unwrap();
        let env = Env::new().with_params(crate::Params::new().with("k", 1));
        let store = Arc::new(IndexStore::new());
        let indexed = Evaluator::new(&m)
            .with_index_store(Arc::clone(&store))
            .eval(&q, &env)
            .unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval(&q, &env)
            .unwrap();
        assert_eq!(
            indexed.expect_bag().unwrap().items(),
            naive.expect_bag().unwrap().items()
        );
        assert_eq!(
            indexed.expect_bag().unwrap().items(),
            &[Value::str("x"), Value::str("z")]
        );
        assert_eq!(store.build_count(), 1, "both filters fold into one index");
    }

    #[test]
    fn trailing_non_point_filters_stay_filters() {
        // Only the leading run of point filters is consumed; the `x <> 'P100'`
        // filter must still execute (and the answers must match naive).
        let extents = fixture();
        let store = Arc::new(IndexStore::new());
        let ev = Evaluator::new(&extents).with_index_store(Arc::clone(&store));
        let q = parse("[x | {k, x} <- <<protein, accession_num>>; k = ?key; x <> 'P100']").unwrap();
        for (key, expect) in [(1, 0usize), (2, 1)] {
            let env = Env::new().with_params(crate::Params::new().with("key", key));
            let got = ev.eval(&q, &env).unwrap().expect_bag().unwrap().len();
            assert_eq!(got, expect, "key {key}");
        }
        assert_eq!(store.build_count(), 1);
    }

    #[test]
    fn empty_extent_point_lookup_skips_key_evaluation() {
        // Naive evaluation never reaches the filter when the extent is empty, so
        // an unbound parameter raises no error; the index probe must agree.
        let mut m = MapExtents::new();
        m.insert("empty", Bag::empty());
        let q = parse("[x | {k, x} <- <<empty>>; k = ?missing]").unwrap();
        let store = Arc::new(IndexStore::new());
        let indexed = Evaluator::new(&m)
            .with_index_store(Arc::clone(&store))
            .eval_closed(&q)
            .unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        assert_eq!(indexed, naive);
        assert!(indexed.expect_bag().unwrap().is_empty());
        // A non-empty extent must still surface the unbound parameter.
        let q2 = parse("[x | {k, x} <- <<protein, accession_num>>; k = ?missing]").unwrap();
        let extents = fixture();
        let ev = Evaluator::new(&extents).with_index_store(Arc::new(IndexStore::new()));
        assert_eq!(
            ev.eval_closed(&q2),
            Err(EvalError::UnboundParam("missing".into()))
        );
    }

    #[test]
    fn point_lookup_requires_persistence_to_pay_off() {
        // No index store and no plan cache: building an index per evaluation
        // costs more than the scan it replaces, so the planner must not emit
        // IndexLookup steps.
        let extents = fixture();
        let q = parse("[x | {k, x} <- <<protein, accession_num>>; k = 2]").unwrap();
        let stats = Evaluator::new(&extents).explain(&q, &Env::new()).unwrap();
        assert!(stats.is_empty(), "no persistence, no index: {stats:?}");
        let stats = Evaluator::new(&extents)
            .with_index_store(Arc::new(IndexStore::new()))
            .explain(&q, &Env::new())
            .unwrap();
        assert!(
            matches!(stats.as_slice(), [s] if s.strategy == JoinStrategy::IndexLookup),
            "store attached: index lookup expected, got {stats:?}"
        );
    }

    #[test]
    fn index_refreshes_copy_on_write_on_append() {
        let provider = AppendOnly::new();
        provider.append_pairs("t,v", vec![(1, "a"), (2, "b"), (1, "c")]);
        let store = Arc::new(IndexStore::new());
        let ev = Evaluator::new(&provider).with_index_store(Arc::clone(&store));
        let q = parse("[x | {k, x} <- <<t, v>>; k = ?k]").unwrap();
        let env1 = Env::new().with_params(crate::Params::new().with("k", 1));
        let bag = ev.eval(&q, &env1).unwrap().expect_bag().unwrap();
        assert_eq!(bag.items(), &[Value::str("a"), Value::str("c")]);
        assert_eq!(store.build_count(), 1);
        // Append at the tail: the stale index must refresh from the appended
        // rows only, not rebuild — and serve the new row in source order.
        provider.append_pairs("t,v", vec![(1, "d"), (3, "e")]);
        let bag = ev.eval(&q, &env1).unwrap().expect_bag().unwrap();
        assert_eq!(
            bag.items(),
            &[Value::str("a"), Value::str("c"), Value::str("d")]
        );
        assert_eq!(store.build_count(), 1, "no full rebuild");
        assert_eq!(store.refresh_count(), 1, "one copy-on-write refresh");
        // The refreshed index serves the next version-current probe as a hit.
        let env3 = Env::new().with_params(crate::Params::new().with("k", 3));
        let bag = ev.eval(&q, &env3).unwrap().expect_bag().unwrap();
        assert_eq!(bag.items(), &[Value::str("e")]);
        assert_eq!(store.hit_count(), 1);
    }

    #[test]
    fn standing_delta_matches_full_reexecution_tail() {
        let provider = AppendOnly::new();
        provider.append_pairs("t,v", vec![(1, "a"), (2, "b"), (3, "c"), (2, "b")]);
        let ev = Evaluator::new(&provider);
        let q = parse("[x | {k, x} <- <<t, v>>; k >= 2]").unwrap();
        let env = Env::new();
        let plan = ev.standing_plan(&q, &env).unwrap().expect("maintainable");
        assert_eq!(plan.lead_scheme().key(), "t,v");
        assert_eq!(plan.touched().len(), 1);
        let initial = ev.execute_standing(&plan, &env).unwrap();
        assert_eq!(
            initial.items(),
            &[Value::str("b"), Value::str("c"), Value::str("b")]
        );
        // Append (with a duplicate and a filtered-out row), delta-evaluate just
        // the appended elements, and check against a full re-execution: the
        // delta is exactly the tail, order and multiplicity included.
        let appended = vec![
            Value::pair(Value::Int(5), Value::str("d")),
            Value::pair(Value::Int(0), Value::str("x")),
            Value::pair(Value::Int(5), Value::str("d")),
        ];
        provider.append_pairs("t,v", vec![(5, "d"), (0, "x"), (5, "d")]);
        let delta = ev.delta_standing(&plan, &appended, &env).unwrap();
        assert_eq!(delta.items(), &[Value::str("d"), Value::str("d")]);
        let full = ev.eval(&q, &env).unwrap().expect_bag().unwrap();
        let mut incremental = initial.clone();
        for v in delta.iter() {
            incremental.push(v.clone());
        }
        assert_eq!(incremental.items(), full.items());
    }

    #[test]
    fn standing_delta_probes_the_retained_hash_join_index() {
        let provider = AppendOnly::new();
        provider.append_pairs("t,v", vec![(1, "a"), (2, "b")]);
        provider.append_pairs("u,w", vec![(1, "X"), (2, "Y"), (1, "Z")]);
        let ev = Evaluator::new(&provider);
        let q = parse("[{x, y} | {k, x} <- <<t, v>>; {k2, y} <- <<u, w>>; k2 = k]").unwrap();
        let env = Env::new();
        let plan = ev.standing_plan(&q, &env).unwrap().expect("maintainable");
        assert_eq!(plan.lead_scheme().key(), "t,v");
        assert_eq!(plan.touched().len(), 2, "lead + hash-join build side");
        let initial = ev.execute_standing(&plan, &env).unwrap();
        let full0 = ev.eval(&q, &env).unwrap().expect_bag().unwrap();
        assert_eq!(initial.items(), full0.items());
        // Appending to the *lead* extent only keeps the retained build-side
        // index current: the delta probes it without rebuilding, and matches
        // the nested-loop tail (both u-matches for key 1, in extent order).
        let appended = vec![Value::pair(Value::Int(1), Value::str("c"))];
        provider.append_pairs("t,v", vec![(1, "c")]);
        let delta = ev.delta_standing(&plan, &appended, &env).unwrap();
        assert_eq!(
            delta.items(),
            &[
                Value::tuple(vec![Value::str("c"), Value::str("X")]),
                Value::tuple(vec![Value::str("c"), Value::str("Z")]),
            ]
        );
        let full = ev.eval(&q, &env).unwrap().expect_bag().unwrap();
        let mut incremental = initial.clone();
        for v in delta.iter() {
            incremental.push(v.clone());
        }
        assert_eq!(incremental.items(), full.items());
    }

    #[test]
    fn standing_delta_reruns_prefix_binds_and_filters() {
        let provider = AppendOnly::new();
        provider.append_pairs("t,v", vec![(1, "a"), (4, "b")]);
        let ev = Evaluator::new(&provider);
        let q = parse("[{c, x} | let c = 3; {k, x} <- <<t, v>>; k > c]").unwrap();
        let env = Env::new();
        let plan = ev.standing_plan(&q, &env).unwrap().expect("maintainable");
        let initial = ev.execute_standing(&plan, &env).unwrap();
        assert_eq!(
            initial.items(),
            &[Value::tuple(vec![Value::Int(3), Value::str("b")])]
        );
        let appended = vec![Value::pair(Value::Int(9), Value::str("z"))];
        provider.append_pairs("t,v", vec![(9, "z")]);
        let delta = ev.delta_standing(&plan, &appended, &env).unwrap();
        assert_eq!(
            delta.items(),
            &[Value::tuple(vec![Value::Int(3), Value::str("z")])]
        );
    }

    #[test]
    fn non_incrementalisable_shapes_get_no_standing_plan() {
        let provider = AppendOnly::new();
        provider.append_pairs("t,v", vec![(1, "a"), (2, "b")]);
        let ev = Evaluator::new(&provider);
        let env = Env::new();
        // Self-join: the lead scheme is referenced twice — appended rows would
        // have to join against themselves too, which one tail pass cannot do.
        let q = parse("[{x, y} | {k, x} <- <<t, v>>; {k2, y} <- <<t, v>>; k2 = k]").unwrap();
        assert!(ev.standing_plan(&q, &env).unwrap().is_none());
        // Aggregation wraps the comprehension in an `Apply`: must observe the
        // whole bag, not a delta.
        let q = parse("count([x | {k, x} <- <<t, v>>])").unwrap();
        assert!(ev.standing_plan(&q, &env).unwrap().is_none());
        // Computed lead source: appends to underlying schemes are not a tail
        // append of the iterated bag.
        let q = parse("[x | x <- [1, 2, 3]]").unwrap();
        assert!(ev.standing_plan(&q, &env).unwrap().is_none());
    }

    #[test]
    fn non_append_only_providers_rebuild_instead_of_refreshing() {
        // MapExtents inserts replace whole bags (prefixes are not stable), so a
        // version bump must trigger a full rebuild, never a tail refresh.
        let mut m = MapExtents::new();
        m.insert_pairs("t,v", vec![(1, "a"), (2, "b")]);
        let store = Arc::new(IndexStore::new());
        let q = parse("[x | {k, x} <- <<t, v>>; k = ?k]").unwrap();
        let env = Env::new().with_params(crate::Params::new().with("k", 1));
        {
            let ev = Evaluator::new(&m).with_index_store(Arc::clone(&store));
            ev.eval(&q, &env).unwrap();
        }
        m.insert_pairs("t,v", vec![(1, "z"), (2, "b"), (1, "a")]);
        let ev = Evaluator::new(&m).with_index_store(Arc::clone(&store));
        let bag = ev.eval(&q, &env).unwrap().expect_bag().unwrap();
        assert_eq!(bag.items(), &[Value::str("z"), Value::str("a")]);
        assert_eq!(store.build_count(), 2, "replaced bag forces a full rebuild");
        assert_eq!(store.refresh_count(), 0);
    }

    #[test]
    fn explain_and_step_probe_agree_on_index_lookup() {
        let extents = fixture();
        let store = Arc::new(IndexStore::new());
        let probe = Arc::new(StepProbe::new());
        let ev = Evaluator::new(&extents)
            .with_index_store(Arc::clone(&store))
            .with_step_probe(Arc::clone(&probe));
        let q = parse("[x | {k, x} <- <<protein, accession_num>>; k = ?key]").unwrap();
        let stats = ev.explain(&q, &Env::new()).unwrap();
        assert!(
            matches!(stats.as_slice(), [s] if s.strategy == JoinStrategy::IndexLookup),
            "explain must report the index lookup: {stats:?}"
        );
        let env = Env::new().with_params(crate::Params::new().with("key", 2));
        ev.eval(&q, &env).unwrap();
        assert_eq!(
            probe.count(StepKind::IndexLookup),
            1,
            "the explained strategy is the executed step"
        );
        assert_eq!(probe.count(StepKind::Iterate), 0);
        assert_eq!(probe.count(StepKind::Filter), 0, "filters were consumed");
    }

    /// The skewed star workload for the re-optimisation tests: `hub` has 60
    /// rows over 20 distinct keys but 41 of them share key 0 (skew the
    /// `1/max(distinct)` estimate cannot see); `probe` has 12 rows, all key 0;
    /// `wide` has 40 rows spread uniformly over the 20 keys.
    fn reopt_fixture() -> (MapExtents, Expr) {
        let mut m = MapExtents::new();
        let mut hub = Vec::new();
        for i in 0..41 {
            hub.push((0i64, if i % 2 == 0 { "h" } else { "h2" }));
        }
        for k in 1..20 {
            hub.push((k as i64, "h3"));
        }
        m.insert_pairs("hub,v", hub);
        m.insert_pairs("probe,v", (0..12).map(|_| (0i64, "p")).collect());
        m.insert_pairs("wide,v", (0..40).map(|i| (i as i64 % 20, "w")).collect());
        let q = parse(
            "[{x, y, z} | {k1, x} <- <<hub, v>>; {k2, y} <- <<probe, v>>; k2 = k1; \
             {k3, z} <- <<wide, v>>; k3 = k1]",
        )
        .unwrap();
        (m, q)
    }

    /// The positions a stats list's bushy join nodes cover, innermost first —
    /// the shape fingerprint the re-optimisation test pins.
    fn bushy_shapes(stats: &[JoinStats]) -> Vec<Vec<usize>> {
        stats
            .iter()
            .filter_map(|s| match &s.strategy {
                JoinStrategy::Bushy { tree } => Some(tree.leaves()),
                _ => None,
            })
            .collect()
    }

    fn total_actual_rows(stats: &[JoinStats]) -> usize {
        stats.iter().filter_map(|s| s.actual_output).sum()
    }

    #[test]
    fn skewed_workload_reoptimises_to_a_cheaper_tree() {
        let (m, q) = reopt_fixture();
        // The plan a fresh (cache-free) evaluator picks: the estimate trusts
        // sel(hub, probe) = 1/20, so (hub ⋈ probe) looks tiny (est 36) and is
        // joined first — but key skew makes it 492 rows.
        let initial = Evaluator::new(&m).explain(&q, &Env::new()).unwrap();
        assert_eq!(
            bushy_shapes(&initial),
            vec![vec![0, 1], vec![0, 1, 2]],
            "estimate-driven tree joins hub⋈probe first: {initial:?}"
        );

        let cache = Arc::new(PlanCache::new());
        let ev = Evaluator::new(&m).with_plan_cache(Arc::clone(&cache));
        let naive = Evaluator::new(&m).with_nested_loops();
        let want = naive.eval_closed(&q).unwrap();

        // First execution: a miss; the 13.7× underestimate on hub⋈probe is
        // recorded with the cached plan.
        let first = ev.eval_closed(&q).unwrap();
        assert_eq!(first, want);
        assert_eq!(cache.reopt_count(), 0);

        // Second execution: the feedback triggers re-enumeration with observed
        // selectivities; the cheaper (hub ⋈ wide) ⋈ probe tree wins.
        let second = ev.eval_closed(&q).unwrap();
        assert_eq!(second, want, "re-optimised plan answers identically");
        assert_eq!(cache.reopt_count(), 1, "one re-optimisation round");
        assert_eq!(cache.hit_count(), 1, "the re-opt lookup still counts a hit");
        let reopted = ev.explain(&q, &Env::new()).unwrap();
        assert_eq!(
            bushy_shapes(&reopted),
            vec![vec![0, 2], vec![0, 1, 2]],
            "observed selectivities flip the join order: {reopted:?}"
        );
        assert!(
            total_actual_rows(&reopted) < total_actual_rows(&initial),
            "new tree materialises fewer rows: {} vs {}",
            total_actual_rows(&reopted),
            total_actual_rows(&initial)
        );

        // Third execution: a plain hit — one feedback round per version, no
        // oscillation.
        ev.eval_closed(&q).unwrap();
        assert_eq!(cache.reopt_count(), 1);
    }

    #[test]
    fn reopt_keeps_the_previous_plan_when_replanning_is_not_cheaper() {
        // Uniform data: estimates are accurate, divergence stays under the
        // factor, and no re-optimisation round ever triggers.
        let m = chain_fixture();
        let q = parse(
            "[{x, y, z} | {k1, x} <- <<big, v>>; {k2, y} <- <<mid, v>>; k2 = k1; \
             {k3, z} <- <<small, v>>; k3 = k1]",
        )
        .unwrap();
        let cache = Arc::new(PlanCache::new());
        let ev = Evaluator::new(&m).with_plan_cache(Arc::clone(&cache));
        let first = ev.eval_closed(&q).unwrap();
        let second = ev.eval_closed(&q).unwrap();
        assert_eq!(first, second);
        assert_eq!(cache.reopt_count(), 0, "accurate estimates never replan");
        assert_eq!(cache.hit_count(), 1);
    }

    #[test]
    fn histograms_refresh_incrementally_on_append_only_providers() {
        let provider = AppendOnly::new();
        provider.append_pairs("l,v", (0..8).map(|i| (i as i64 % 4, "l")).collect());
        provider.append_pairs("r,v", (0..6).map(|i| (i as i64 % 3, "r")).collect());
        provider.append_pairs("m,v", (0..4).map(|i| (i as i64 % 2, "m")).collect());
        let cache = Arc::new(PlanCache::new());
        let ev = Evaluator::new(&provider).with_plan_cache(Arc::clone(&cache));
        let q = parse(
            "[{x, y, z} | {k1, x} <- <<l, v>>; {k2, y} <- <<r, v>>; k2 = k1; \
             {k3, z} <- <<m, v>>; k3 = k1]",
        )
        .unwrap();
        let naive = Evaluator::new(&provider).with_nested_loops();
        assert_eq!(ev.eval_closed(&q).unwrap(), naive.eval_closed(&q).unwrap());
        assert_eq!(cache.histogram_refresh_count(), 0);
        assert!(cache.histogram_count() > 0, "histograms persisted");
        // Append: replanning must *refresh* the stale histograms from the tail
        // rather than recount, and answers must stay correct.
        provider.append_pairs("l,v", vec![(0, "l9"), (5, "l10")]);
        assert_eq!(ev.eval_closed(&q).unwrap(), naive.eval_closed(&q).unwrap());
        assert!(
            cache.histogram_refresh_count() > 0,
            "stale histograms refreshed copy-on-write"
        );
    }
}
