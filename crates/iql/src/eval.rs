//! The IQL evaluator.

use crate::ast::{BinOp, Expr, Qualifier, SchemeRef, UnOp};
use crate::builtins;
use crate::env::{literal_value, match_pattern, Env};
use crate::error::EvalError;
use crate::value::{Bag, Value};

/// A source of extents for scheme references.
///
/// The evaluator is agnostic about where extents come from: the `relational` crate
/// implements this for wrapped databases, the `automed` query processor implements it
/// for *virtual* global-schema objects by reformulating queries down to the sources,
/// and [`crate::MapExtents`] implements it for in-memory test fixtures.
pub trait ExtentProvider {
    /// Return the extent (a bag) of the schema object named by `scheme`.
    fn extent(&self, scheme: &SchemeRef) -> Result<Bag, EvalError>;
}

/// Blanket implementation so `&P` can be used wherever a provider is expected.
impl<P: ExtentProvider + ?Sized> ExtentProvider for &P {
    fn extent(&self, scheme: &SchemeRef) -> Result<Bag, EvalError> {
        (**self).extent(scheme)
    }
}

/// An [`ExtentProvider`] with no extents at all; every scheme reference fails.
/// Useful for evaluating closed expressions (no scheme references).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoExtents;

impl ExtentProvider for NoExtents {
    fn extent(&self, scheme: &SchemeRef) -> Result<Bag, EvalError> {
        Err(EvalError::UnknownScheme(scheme.clone()))
    }
}

/// Evaluates IQL expressions against an [`ExtentProvider`].
pub struct Evaluator<P> {
    provider: P,
}

impl<P: ExtentProvider> Evaluator<P> {
    /// Create an evaluator over the given extent provider.
    pub fn new(provider: P) -> Self {
        Evaluator { provider }
    }

    /// Evaluate an expression in an empty environment.
    pub fn eval_closed(&self, expr: &Expr) -> Result<Value, EvalError> {
        self.eval(expr, &Env::new())
    }

    /// Evaluate an expression in the given environment.
    pub fn eval(&self, expr: &Expr, env: &Env) -> Result<Value, EvalError> {
        match expr {
            Expr::Lit(lit) => Ok(literal_value(lit)),
            Expr::Var(name) => env
                .get(name)
                .cloned()
                .ok_or_else(|| EvalError::UnboundVariable(name.clone())),
            Expr::Scheme(scheme) => Ok(Value::Bag(self.provider.extent(scheme)?)),
            Expr::Tuple(items) => {
                let mut vals = Vec::with_capacity(items.len());
                for item in items {
                    vals.push(self.eval(item, env)?);
                }
                Ok(Value::Tuple(vals))
            }
            Expr::Bag(items) => {
                let mut bag = Bag::empty();
                for item in items {
                    bag.push(self.eval(item, env)?);
                }
                Ok(Value::Bag(bag))
            }
            Expr::Comp { head, qualifiers } => {
                let mut out = Bag::empty();
                self.eval_comprehension(head, qualifiers, env, &mut out)?;
                Ok(Value::Bag(out))
            }
            Expr::Apply { function, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env)?);
                }
                builtins::apply(function, &vals)
            }
            Expr::BinOp { op, lhs, rhs } => self.eval_binop(*op, lhs, rhs, env),
            Expr::UnOp { op, expr } => {
                let v = self.eval(expr, env)?;
                match op {
                    UnOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(EvalError::TypeError {
                            context: "negation".into(),
                            found: other.type_name().into(),
                        }),
                    },
                    UnOp::Not => Ok(Value::Bool(!v.as_bool()?)),
                }
            }
            Expr::If {
                cond,
                then,
                otherwise,
            } => {
                if self.eval(cond, env)?.as_bool()? {
                    self.eval(then, env)
                } else {
                    self.eval(otherwise, env)
                }
            }
            Expr::Let {
                pattern,
                value,
                body,
            } => {
                let v = self.eval(value, env)?;
                let mut inner = env.clone();
                if !match_pattern(pattern, &v, &mut inner)? {
                    return Err(EvalError::PatternMismatch {
                        pattern: pattern.to_string(),
                        value: v.to_string(),
                    });
                }
                self.eval(body, &inner)
            }
            Expr::Void => Ok(Value::Void),
            Expr::Any => Ok(Value::Any),
            // Evaluating a Range materialises its *lower bound*: this is the sound
            // choice for query answering over extents that are not fully derivable
            // (certain-answer semantics). The upper bound is only consulted by the
            // query processor when reasoning about containment.
            Expr::Range { lower, .. } => self.eval(lower, env),
        }
    }

    fn eval_comprehension(
        &self,
        head: &Expr,
        qualifiers: &[Qualifier],
        env: &Env,
        out: &mut Bag,
    ) -> Result<(), EvalError> {
        match qualifiers.split_first() {
            None => {
                out.push(self.eval(head, env)?);
                Ok(())
            }
            Some((Qualifier::Filter(cond), rest)) => {
                if self.eval(cond, env)?.as_bool()? {
                    self.eval_comprehension(head, rest, env, out)?;
                }
                Ok(())
            }
            Some((Qualifier::Binding { pattern, value }, rest)) => {
                let v = self.eval(value, env)?;
                let mut inner = env.clone();
                if match_pattern(pattern, &v, &mut inner)? {
                    self.eval_comprehension(head, rest, &inner, out)?;
                }
                Ok(())
            }
            Some((Qualifier::Generator { pattern, source }, rest)) => {
                let bag = self.eval(source, env)?.expect_bag()?;
                for element in bag.iter() {
                    let mut inner = env.clone();
                    if match_pattern(pattern, element, &mut inner)? {
                        self.eval_comprehension(head, rest, &inner, out)?;
                    }
                }
                Ok(())
            }
        }
    }

    fn eval_binop(
        &self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        env: &Env,
    ) -> Result<Value, EvalError> {
        // Short-circuiting boolean operators.
        if op == BinOp::And {
            return Ok(Value::Bool(
                self.eval(lhs, env)?.as_bool()? && self.eval(rhs, env)?.as_bool()?,
            ));
        }
        if op == BinOp::Or {
            return Ok(Value::Bool(
                self.eval(lhs, env)?.as_bool()? || self.eval(rhs, env)?.as_bool()?,
            ));
        }
        let l = self.eval(lhs, env)?;
        let r = self.eval(rhs, env)?;
        match op {
            BinOp::Eq => Ok(Value::Bool(l == r)),
            BinOp::Neq => Ok(Value::Bool(l != r)),
            BinOp::Lt => Ok(Value::Bool(l < r)),
            BinOp::Le => Ok(Value::Bool(l <= r)),
            BinOp::Gt => Ok(Value::Bool(l > r)),
            BinOp::Ge => Ok(Value::Bool(l >= r)),
            BinOp::BagUnion => Ok(Value::Bag(l.expect_bag()?.union(&r.expect_bag()?))),
            BinOp::BagDiff => Ok(Value::Bag(l.expect_bag()?.difference(&r.expect_bag()?))),
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => self.eval_arith(op, &l, &r),
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }

    fn eval_arith(&self, op: BinOp, l: &Value, r: &Value) -> Result<Value, EvalError> {
        // String concatenation with `+`.
        if op == BinOp::Add {
            if let (Value::Str(a), Value::Str(b)) = (l, r) {
                return Ok(Value::Str(format!("{a}{b}")));
            }
        }
        match (l, r) {
            (Value::Int(a), Value::Int(b)) => match op {
                BinOp::Add => Ok(Value::Int(a + b)),
                BinOp::Sub => Ok(Value::Int(a - b)),
                BinOp::Mul => Ok(Value::Int(a * b)),
                BinOp::Div => {
                    if *b == 0 {
                        Err(EvalError::DivisionByZero)
                    } else {
                        Ok(Value::Int(a / b))
                    }
                }
                _ => unreachable!(),
            },
            _ => {
                let (a, b) = match (l.as_f64(), r.as_f64()) {
                    (Some(a), Some(b)) => (a, b),
                    _ => {
                        return Err(EvalError::TypeError {
                            context: format!("arithmetic `{}`", op.symbol()),
                            found: format!("{} and {}", l.type_name(), r.type_name()),
                        })
                    }
                };
                match op {
                    BinOp::Add => Ok(Value::Float(a + b)),
                    BinOp::Sub => Ok(Value::Float(a - b)),
                    BinOp::Mul => Ok(Value::Float(a * b)),
                    BinOp::Div => {
                        if b == 0.0 {
                            Err(EvalError::DivisionByZero)
                        } else {
                            Ok(Value::Float(a / b))
                        }
                    }
                    _ => unreachable!(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, MapExtents};

    fn fixture() -> MapExtents {
        let mut m = MapExtents::new();
        m.insert_keys("protein", vec![1, 2, 3]);
        m.insert_pairs(
            "protein,accession_num",
            vec![(1, "P100"), (2, "P200"), (3, "P300")],
        );
        m.insert_pairs("protein,organism", vec![(1, "human"), (2, "mouse")]);
        m.insert_pairs(
            "peptidehit,score",
            vec![(10, "55"), (11, "70"), (12, "70")],
        );
        m
    }

    fn run(query: &str) -> Value {
        let q = parse(query).unwrap();
        Evaluator::new(fixture()).eval_closed(&q).unwrap()
    }

    #[test]
    fn simple_projection() {
        let v = run("[x | {k, x} <- <<protein, accession_num>>]");
        assert_eq!(
            v,
            Value::Bag(Bag::from_values(vec![
                Value::str("P100"),
                Value::str("P200"),
                Value::str("P300"),
            ]))
        );
    }

    #[test]
    fn paper_style_provenance_tagging() {
        let v = run("[{'PEDRO', k} | k <- <<protein>>]");
        let bag = v.expect_bag().unwrap();
        assert_eq!(bag.len(), 3);
        assert!(bag.contains(&Value::pair(Value::str("PEDRO"), Value::Int(1))));
    }

    #[test]
    fn selection_with_filter() {
        let v = run("[x | {k, x} <- <<protein, accession_num>>; k = 2]");
        assert_eq!(v.expect_bag().unwrap().items(), &[Value::str("P200")]);
    }

    #[test]
    fn join_across_schemes() {
        let v = run(
            "[{a, o} | {k, a} <- <<protein, accession_num>>; {k2, o} <- <<protein, organism>>; k = k2]",
        );
        let bag = v.expect_bag().unwrap();
        assert_eq!(bag.len(), 2);
        assert!(bag.contains(&Value::pair(Value::str("P100"), Value::str("human"))));
    }

    #[test]
    fn aggregates_over_comprehensions() {
        assert_eq!(run("count [k | k <- <<protein>>]"), Value::Int(3));
        assert_eq!(run("count <<protein>>"), Value::Int(3));
        assert_eq!(run("max [k | k <- <<protein>>]"), Value::Int(3));
    }

    #[test]
    fn bag_union_duplicates_preserved() {
        let v = run("<<protein>> ++ <<protein>>");
        assert_eq!(v.expect_bag().unwrap().len(), 6);
    }

    #[test]
    fn bag_difference() {
        let v = run("<<protein>> -- [k | k <- <<protein>>; k = 1]");
        assert_eq!(v.expect_bag().unwrap().len(), 2);
    }

    #[test]
    fn nested_comprehension_with_correlation() {
        let v = run(
            "[{k, count [s | {k2, s} <- <<peptidehit, score>>; k2 = k]} | k <- [10, 11, 99]]",
        );
        let bag = v.expect_bag().unwrap();
        assert!(bag.contains(&Value::pair(Value::Int(10), Value::Int(1))));
        assert!(bag.contains(&Value::pair(Value::Int(99), Value::Int(0))));
    }

    #[test]
    fn let_and_if() {
        assert_eq!(
            run("let n = count <<protein>> in if n > 2 then 'many' else 'few'"),
            Value::str("many")
        );
    }

    #[test]
    fn binding_qualifier() {
        let v = run("[{k, n} | k <- <<protein>>; let n = k * 10; n > 10]");
        let bag = v.expect_bag().unwrap();
        assert_eq!(bag.len(), 2);
        assert!(bag.contains(&Value::pair(Value::Int(3), Value::Int(30))));
    }

    #[test]
    fn literal_pattern_in_generator_filters() {
        let mut m = MapExtents::new();
        m.insert(
            "uprotein",
            Bag::from_values(vec![
                Value::pair(Value::str("PEDRO"), Value::Int(1)),
                Value::pair(Value::str("gpmDB"), Value::Int(2)),
            ]),
        );
        let q = parse("[k | {'PEDRO', k} <- <<uprotein>>]").unwrap();
        let v = Evaluator::new(m).eval_closed(&q).unwrap();
        assert_eq!(v.expect_bag().unwrap().items(), &[Value::Int(1)]);
    }

    #[test]
    fn range_evaluates_to_lower_bound() {
        assert_eq!(run("Range Void Any"), Value::Void);
        let v = run("Range [k | k <- <<protein>>] Any");
        assert_eq!(v.expect_bag().unwrap().len(), 3);
    }

    #[test]
    fn arithmetic_and_strings() {
        assert_eq!(run("1 + 2 * 3"), Value::Int(7));
        assert_eq!(run("7 / 2"), Value::Int(3));
        assert_eq!(run("7.0 / 2"), Value::Float(3.5));
        assert_eq!(run("'a' + 'b'"), Value::str("ab"));
        assert_eq!(run("-(3)"), Value::Int(-3));
    }

    #[test]
    fn division_by_zero_reported() {
        let q = parse("1 / 0").unwrap();
        assert_eq!(
            Evaluator::new(NoExtents).eval_closed(&q),
            Err(EvalError::DivisionByZero)
        );
    }

    #[test]
    fn unbound_variable_reported() {
        let q = parse("missing + 1").unwrap();
        assert!(matches!(
            Evaluator::new(NoExtents).eval_closed(&q),
            Err(EvalError::UnboundVariable(_))
        ));
    }

    #[test]
    fn boolean_short_circuit() {
        // The right operand would divide by zero; `and` must not evaluate it.
        assert_eq!(run("false and (1 / 0 = 1)"), Value::Bool(false));
        assert_eq!(run("true or (1 / 0 = 1)"), Value::Bool(true));
        assert_eq!(run("not false"), Value::Bool(true));
    }

    #[test]
    fn comparisons() {
        assert_eq!(run("2 < 3"), Value::Bool(true));
        assert_eq!(run("'abc' <> 'abd'"), Value::Bool(true));
        assert_eq!(run("3 >= 3"), Value::Bool(true));
    }
}
