//! The IQL evaluator.
//!
//! # Comprehension planning
//!
//! Comprehensions are evaluated through a small per-comprehension plan rather than
//! textbook nested recursion. Planning happens each time a `Comp` node is evaluated
//! (plans borrow the AST and capture the current environment's view of generator
//! sources) and recognises one rewrite that dominates integration workloads: the
//! **equi-join shape** `…; p1 <- e1; p2 <- e2; x = y; …` that GAV unfolding and LAV
//! reverse queries produce when two source extents are joined on a key.
//!
//! When a generator is immediately followed by one or more `Filter(Eq(Var, Var))`
//! qualifiers whose two variables split across "bound by this generator's pattern"
//! and "bound earlier / outer", and the generator's source expression is
//! *independent* of all variables bound earlier in the comprehension (checked with
//! [`crate::rewrite::free_vars`]), the planner evaluates that source **once**,
//! hash-indexes its elements by the (composite) join key, and turns the generator +
//! filter run into a hash-join step: each outer row probes the index in O(1) expected
//! instead of scanning the whole inner extent. An n×m nested loop becomes
//! O(n + m + output). Multi-filter runs matter in practice: the GAV rewrites tag
//! every global extent with its source, so the paper's queries join on
//! `s2 = s; k2 = k` pairs, and a composite `{source, key}` hash key is what makes
//! those joins selective.
//!
//! Everything that does not match the shape — correlated generators (whose source
//! mentions earlier variables), non-equality filters, filters over expressions rather
//! than plain variables — falls back to exactly the nested-loop semantics, and the
//! hash-join step itself preserves nested-loop **output order** (outer order first,
//! inner source order within a key group), so planned and naive evaluation produce
//! identical bags, duplicates and all — with the one exception of `NaN` join keys,
//! where the filter's `=` (which treats `NaN` as equal to every float, see
//! [`crate::value`]) and the hash probe disagree; extents of wrapped sources never
//! contain `NaN`. [`Evaluator::with_nested_loops`] disables
//! planning entirely; the property-test suite uses it as the reference semantics, and
//! the benches use it to measure the planner's win.
//!
//! One deliberate strictness difference: a planned generator source is evaluated when
//! the plan is built, even if the rows that would reach it are filtered out earlier
//! (the naive evaluator only discovers errors — unknown scheme, `Any` extent — in
//! qualifiers it actually reaches). Queries over well-formed schemas are unaffected.

use crate::ast::{BinOp, Expr, Pattern, Qualifier, SchemeRef, UnOp};
use crate::builtins;
use crate::env::{literal_value, match_pattern, Env};
use crate::error::EvalError;
use crate::rewrite;
use crate::value::{Bag, Value};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// A source of extents for scheme references.
///
/// The evaluator is agnostic about where extents come from: the `relational` crate
/// implements this for wrapped databases, the `automed` query processor implements it
/// for *virtual* global-schema objects by reformulating queries down to the sources,
/// and [`crate::MapExtents`] implements it for in-memory test fixtures.
///
/// Extents are returned as `Arc<Bag>` so providers can serve cached bags without deep
/// copies — the evaluator and all layered providers share one allocation per extent.
pub trait ExtentProvider {
    /// Return the extent (a shared bag) of the schema object named by `scheme`.
    fn extent(&self, scheme: &SchemeRef) -> Result<Arc<Bag>, EvalError>;
}

/// Blanket implementation so `&P` can be used wherever a provider is expected.
impl<P: ExtentProvider + ?Sized> ExtentProvider for &P {
    fn extent(&self, scheme: &SchemeRef) -> Result<Arc<Bag>, EvalError> {
        (**self).extent(scheme)
    }
}

/// An [`ExtentProvider`] with no extents at all; every scheme reference fails.
/// Useful for evaluating closed expressions (no scheme references).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoExtents;

impl ExtentProvider for NoExtents {
    fn extent(&self, scheme: &SchemeRef) -> Result<Arc<Bag>, EvalError> {
        Err(EvalError::UnknownScheme(scheme.clone()))
    }
}

/// Evaluates IQL expressions against an [`ExtentProvider`].
pub struct Evaluator<P> {
    provider: P,
    use_planner: bool,
}

/// One step of a planned comprehension (borrows the AST; indexes own their data).
enum Step<'q> {
    /// Plain generator: evaluate the source per incoming row and iterate.
    Iterate {
        pattern: &'q Pattern,
        source: &'q Expr,
    },
    /// A generator + run of equi-join filters fused into a hash join: the source was
    /// evaluated once and indexed by the (possibly composite) join key; each incoming
    /// row probes with the values of `probe_vars`.
    HashJoin {
        pattern: &'q Pattern,
        probe_vars: Vec<&'q str>,
        index: HashMap<Value, Vec<Value>>,
    },
    /// A boolean filter.
    Filter(&'q Expr),
    /// A `let` qualifier.
    Bind {
        pattern: &'q Pattern,
        value: &'q Expr,
    },
}

impl<P: ExtentProvider> Evaluator<P> {
    /// Create an evaluator over the given extent provider (hash-join planning on).
    pub fn new(provider: P) -> Self {
        Evaluator {
            provider,
            use_planner: true,
        }
    }

    /// Disable comprehension planning: evaluate every comprehension with the naive
    /// nested-loop semantics. This is the reference implementation the planner must
    /// agree with; used by property tests and benchmark baselines.
    pub fn with_nested_loops(mut self) -> Self {
        self.use_planner = false;
        self
    }

    /// Evaluate an expression in an empty environment.
    pub fn eval_closed(&self, expr: &Expr) -> Result<Value, EvalError> {
        self.eval(expr, &Env::new())
    }

    /// Evaluate an expression in the given environment.
    pub fn eval(&self, expr: &Expr, env: &Env) -> Result<Value, EvalError> {
        match expr {
            Expr::Lit(lit) => Ok(literal_value(lit)),
            Expr::Var(name) => env
                .get(name)
                .cloned()
                .ok_or_else(|| EvalError::UnboundVariable(name.clone())),
            Expr::Scheme(scheme) => Ok(Value::Bag((*self.provider.extent(scheme)?).clone())),
            Expr::Tuple(items) => {
                let mut vals = Vec::with_capacity(items.len());
                for item in items {
                    vals.push(self.eval(item, env)?);
                }
                Ok(Value::tuple(vals))
            }
            Expr::Bag(items) => {
                let mut vals = Vec::with_capacity(items.len());
                for item in items {
                    vals.push(self.eval(item, env)?);
                }
                Ok(Value::Bag(Bag::from_values(vals)))
            }
            Expr::Comp { head, qualifiers } => {
                let mut out = Bag::empty();
                if self.use_planner {
                    let steps = self.plan_comprehension(qualifiers, env)?;
                    self.exec_plan(head, &steps, env, &mut out)?;
                } else {
                    self.eval_comprehension(head, qualifiers, env, &mut out)?;
                }
                Ok(Value::Bag(out))
            }
            Expr::Apply { function, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env)?);
                }
                builtins::apply(function, &vals)
            }
            Expr::BinOp { op, lhs, rhs } => self.eval_binop(*op, lhs, rhs, env),
            Expr::UnOp { op, expr } => {
                let v = self.eval(expr, env)?;
                match op {
                    UnOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(EvalError::TypeError {
                            context: "negation".into(),
                            found: other.type_name().into(),
                        }),
                    },
                    UnOp::Not => Ok(Value::Bool(!v.as_bool()?)),
                }
            }
            Expr::If {
                cond,
                then,
                otherwise,
            } => {
                if self.eval(cond, env)?.as_bool()? {
                    self.eval(then, env)
                } else {
                    self.eval(otherwise, env)
                }
            }
            Expr::Let {
                pattern,
                value,
                body,
            } => {
                let v = self.eval(value, env)?;
                let mut inner = env.clone();
                if !match_pattern(pattern, &v, &mut inner)? {
                    return Err(EvalError::PatternMismatch {
                        pattern: pattern.to_string(),
                        value: v.to_string(),
                    });
                }
                self.eval(body, &inner)
            }
            Expr::Void => Ok(Value::Void),
            Expr::Any => Ok(Value::Any),
            // Evaluating a Range materialises its *lower bound*: this is the sound
            // choice for query answering over extents that are not fully derivable
            // (certain-answer semantics). The upper bound is only consulted by the
            // query processor when reasoning about containment.
            Expr::Range { lower, .. } => self.eval(lower, env),
        }
    }

    /// Build the step list for a comprehension, fusing generator + equi-join filter
    /// pairs into hash joins where the join shape is detected (see module docs).
    fn plan_comprehension<'q>(
        &self,
        qualifiers: &'q [Qualifier],
        env: &Env,
    ) -> Result<Vec<Step<'q>>, EvalError> {
        let mut steps = Vec::with_capacity(qualifiers.len());
        let mut bound: BTreeSet<&str> = BTreeSet::new();
        let mut i = 0;
        while i < qualifiers.len() {
            match &qualifiers[i] {
                Qualifier::Filter(cond) => {
                    steps.push(Step::Filter(cond));
                    i += 1;
                }
                Qualifier::Binding { pattern, value } => {
                    steps.push(Step::Bind { pattern, value });
                    bound.extend(pattern.bound_vars());
                    i += 1;
                }
                Qualifier::Generator { pattern, source } => {
                    // Collect the maximal run of `x = y` filters directly after the
                    // generator whose sides split across pattern/earlier vars; they
                    // jointly form a (composite) equi-join key.
                    let mut probe_vars: Vec<&str> = Vec::new();
                    let mut build_vars: Vec<&str> = Vec::new();
                    let mut j = i + 1;
                    while let Some(Qualifier::Filter(cond)) = qualifiers.get(j) {
                        let Some((probe, build)) = equi_join_key(cond, pattern) else {
                            break;
                        };
                        probe_vars.push(probe);
                        build_vars.push(build);
                        j += 1;
                    }
                    // Fuse only when the join key actually varies per incoming row
                    // (some probe var is bound by an *earlier qualifier of this
                    // comprehension*). When every probe var already has its one value
                    // in the outer environment — e.g. a correlated nested
                    // comprehension re-planned per outer row — the "join" is a
                    // single-key selection, and building an index to probe it once
                    // costs more than the plain filtered scan it replaces.
                    let varies = probe_vars.iter().any(|v| bound.contains(v));
                    let independent = varies
                        && rewrite::free_vars(source)
                            .iter()
                            .all(|v| !bound.contains(v.as_str()));
                    if independent {
                        let index = self.build_join_index(pattern, source, &build_vars, env)?;
                        steps.push(Step::HashJoin {
                            pattern,
                            probe_vars,
                            index,
                        });
                        bound.extend(pattern.bound_vars());
                        i = j;
                        continue;
                    }
                    steps.push(Step::Iterate { pattern, source });
                    bound.extend(pattern.bound_vars());
                    i += 1;
                }
            }
        }
        Ok(steps)
    }

    /// Evaluate a join source once and group its elements by the values the pattern
    /// binds to `build_vars` (a composite key when there are several). Elements the
    /// pattern rejects are dropped, exactly as the nested loop would skip them.
    fn build_join_index(
        &self,
        pattern: &Pattern,
        source: &Expr,
        build_vars: &[&str],
        env: &Env,
    ) -> Result<HashMap<Value, Vec<Value>>, EvalError> {
        let bag = self.eval(source, env)?.expect_bag()?;
        let mut index: HashMap<Value, Vec<Value>> = HashMap::new();
        for element in bag.iter() {
            let mut scratch = env.clone();
            if match_pattern(pattern, element, &mut scratch)? {
                let mut parts = Vec::with_capacity(build_vars.len());
                for var in build_vars {
                    match scratch.get(var) {
                        Some(v) => parts.push(v.clone()),
                        None => break,
                    }
                }
                if parts.len() == build_vars.len() {
                    index
                        .entry(composite_key(parts))
                        .or_default()
                        .push(element.clone());
                }
            }
        }
        Ok(index)
    }

    /// Run a planned comprehension. Mirrors [`Self::eval_comprehension`] step for
    /// step; the hash-join arm visits the same elements the nested loop's filter
    /// would accept, in the same order.
    fn exec_plan(
        &self,
        head: &Expr,
        steps: &[Step<'_>],
        env: &Env,
        out: &mut Bag,
    ) -> Result<(), EvalError> {
        match steps.split_first() {
            None => {
                out.push(self.eval(head, env)?);
                Ok(())
            }
            Some((Step::Filter(cond), rest)) => {
                if self.eval(cond, env)?.as_bool()? {
                    self.exec_plan(head, rest, env, out)?;
                }
                Ok(())
            }
            Some((Step::Bind { pattern, value }, rest)) => {
                let v = self.eval(value, env)?;
                let mut inner = env.clone();
                if match_pattern(pattern, &v, &mut inner)? {
                    self.exec_plan(head, rest, &inner, out)?;
                }
                Ok(())
            }
            Some((Step::Iterate { pattern, source }, rest)) => {
                let bag = self.eval(source, env)?.expect_bag()?;
                for element in bag.iter() {
                    let mut inner = env.clone();
                    if match_pattern(pattern, element, &mut inner)? {
                        self.exec_plan(head, rest, &inner, out)?;
                    }
                }
                Ok(())
            }
            Some((
                Step::HashJoin {
                    pattern,
                    probe_vars,
                    index,
                },
                rest,
            )) => {
                let mut parts = Vec::with_capacity(probe_vars.len());
                for var in probe_vars {
                    let v = env
                        .get(var)
                        .ok_or_else(|| EvalError::UnboundVariable(var.to_string()))?;
                    parts.push(v.clone());
                }
                if let Some(matches) = index.get(&composite_key(parts)) {
                    for element in matches {
                        let mut inner = env.clone();
                        if match_pattern(pattern, element, &mut inner)? {
                            self.exec_plan(head, rest, &inner, out)?;
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// The naive nested-loop comprehension semantics (reference implementation).
    fn eval_comprehension(
        &self,
        head: &Expr,
        qualifiers: &[Qualifier],
        env: &Env,
        out: &mut Bag,
    ) -> Result<(), EvalError> {
        match qualifiers.split_first() {
            None => {
                out.push(self.eval(head, env)?);
                Ok(())
            }
            Some((Qualifier::Filter(cond), rest)) => {
                if self.eval(cond, env)?.as_bool()? {
                    self.eval_comprehension(head, rest, env, out)?;
                }
                Ok(())
            }
            Some((Qualifier::Binding { pattern, value }, rest)) => {
                let v = self.eval(value, env)?;
                let mut inner = env.clone();
                if match_pattern(pattern, &v, &mut inner)? {
                    self.eval_comprehension(head, rest, &inner, out)?;
                }
                Ok(())
            }
            Some((Qualifier::Generator { pattern, source }, rest)) => {
                let bag = self.eval(source, env)?.expect_bag()?;
                for element in bag.iter() {
                    let mut inner = env.clone();
                    if match_pattern(pattern, element, &mut inner)? {
                        self.eval_comprehension(head, rest, &inner, out)?;
                    }
                }
                Ok(())
            }
        }
    }

    fn eval_binop(&self, op: BinOp, lhs: &Expr, rhs: &Expr, env: &Env) -> Result<Value, EvalError> {
        // Short-circuiting boolean operators.
        if op == BinOp::And {
            return Ok(Value::Bool(
                self.eval(lhs, env)?.as_bool()? && self.eval(rhs, env)?.as_bool()?,
            ));
        }
        if op == BinOp::Or {
            return Ok(Value::Bool(
                self.eval(lhs, env)?.as_bool()? || self.eval(rhs, env)?.as_bool()?,
            ));
        }
        let l = self.eval(lhs, env)?;
        let r = self.eval(rhs, env)?;
        match op {
            BinOp::Eq => Ok(Value::Bool(l == r)),
            BinOp::Neq => Ok(Value::Bool(l != r)),
            BinOp::Lt => Ok(Value::Bool(l < r)),
            BinOp::Le => Ok(Value::Bool(l <= r)),
            BinOp::Gt => Ok(Value::Bool(l > r)),
            BinOp::Ge => Ok(Value::Bool(l >= r)),
            BinOp::BagUnion => Ok(Value::Bag(l.expect_bag()?.union(&r.expect_bag()?))),
            BinOp::BagDiff => Ok(Value::Bag(l.expect_bag()?.difference(&r.expect_bag()?))),
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => self.eval_arith(op, &l, &r),
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }

    fn eval_arith(&self, op: BinOp, l: &Value, r: &Value) -> Result<Value, EvalError> {
        // String concatenation with `+`.
        if op == BinOp::Add {
            if let (Value::Str(a), Value::Str(b)) = (l, r) {
                return Ok(Value::str(format!("{a}{b}")));
            }
        }
        match (l, r) {
            (Value::Int(a), Value::Int(b)) => match op {
                BinOp::Add => Ok(Value::Int(a + b)),
                BinOp::Sub => Ok(Value::Int(a - b)),
                BinOp::Mul => Ok(Value::Int(a * b)),
                BinOp::Div => {
                    if *b == 0 {
                        Err(EvalError::DivisionByZero)
                    } else {
                        Ok(Value::Int(a / b))
                    }
                }
                _ => unreachable!(),
            },
            _ => {
                let (a, b) = match (l.as_f64(), r.as_f64()) {
                    (Some(a), Some(b)) => (a, b),
                    _ => {
                        return Err(EvalError::TypeError {
                            context: format!("arithmetic `{}`", op.symbol()),
                            found: format!("{} and {}", l.type_name(), r.type_name()),
                        })
                    }
                };
                match op {
                    BinOp::Add => Ok(Value::Float(a + b)),
                    BinOp::Sub => Ok(Value::Float(a - b)),
                    BinOp::Mul => Ok(Value::Float(a * b)),
                    BinOp::Div => {
                        if b == 0.0 {
                            Err(EvalError::DivisionByZero)
                        } else {
                            Ok(Value::Float(a / b))
                        }
                    }
                    _ => unreachable!(),
                }
            }
        }
    }
}

/// Assemble a join key from its component values (single components stay bare so a
/// one-column join key compares exactly like the filter would).
fn composite_key(mut parts: Vec<Value>) -> Value {
    if parts.len() == 1 {
        parts.pop().expect("one component")
    } else {
        Value::tuple(parts)
    }
}

/// If `cond` is `Var(a) = Var(b)` with exactly one side bound by `pattern`, return
/// `(probe_var, build_var)`: the side *not* bound by the pattern probes an index
/// keyed by the side the pattern binds.
fn equi_join_key<'q>(cond: &'q Expr, pattern: &Pattern) -> Option<(&'q str, &'q str)> {
    let Expr::BinOp {
        op: BinOp::Eq,
        lhs,
        rhs,
    } = cond
    else {
        return None;
    };
    let (Expr::Var(a), Expr::Var(b)) = (lhs.as_ref(), rhs.as_ref()) else {
        return None;
    };
    let pattern_vars: BTreeSet<&str> = pattern.bound_vars().into_iter().collect();
    match (
        pattern_vars.contains(a.as_str()),
        pattern_vars.contains(b.as_str()),
    ) {
        (true, false) => Some((b.as_str(), a.as_str())),
        (false, true) => Some((a.as_str(), b.as_str())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, MapExtents};

    fn fixture() -> MapExtents {
        let mut m = MapExtents::new();
        m.insert_keys("protein", vec![1, 2, 3]);
        m.insert_pairs(
            "protein,accession_num",
            vec![(1, "P100"), (2, "P200"), (3, "P300")],
        );
        m.insert_pairs("protein,organism", vec![(1, "human"), (2, "mouse")]);
        m.insert_pairs("peptidehit,score", vec![(10, "55"), (11, "70"), (12, "70")]);
        m
    }

    fn run(query: &str) -> Value {
        let q = parse(query).unwrap();
        Evaluator::new(fixture()).eval_closed(&q).unwrap()
    }

    /// Evaluate with the planner and with nested loops; both must agree exactly
    /// (including element order).
    fn run_both_ways(query: &str) -> Value {
        let q = parse(query).unwrap();
        let planned = Evaluator::new(fixture()).eval_closed(&q).unwrap();
        let naive = Evaluator::new(fixture())
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        if let (Value::Bag(p), Value::Bag(n)) = (&planned, &naive) {
            assert_eq!(p.items(), n.items(), "planned vs naive order for {query}");
        } else {
            assert_eq!(planned, naive, "planned vs naive for {query}");
        }
        planned
    }

    #[test]
    fn simple_projection() {
        let v = run("[x | {k, x} <- <<protein, accession_num>>]");
        assert_eq!(
            v,
            Value::Bag(Bag::from_values(vec![
                Value::str("P100"),
                Value::str("P200"),
                Value::str("P300"),
            ]))
        );
    }

    #[test]
    fn paper_style_provenance_tagging() {
        let v = run("[{'PEDRO', k} | k <- <<protein>>]");
        let bag = v.expect_bag().unwrap();
        assert_eq!(bag.len(), 3);
        assert!(bag.contains(&Value::pair(Value::str("PEDRO"), Value::Int(1))));
    }

    #[test]
    fn selection_with_filter() {
        let v = run("[x | {k, x} <- <<protein, accession_num>>; k = 2]");
        assert_eq!(v.expect_bag().unwrap().items(), &[Value::str("P200")]);
    }

    #[test]
    fn join_across_schemes() {
        let v = run_both_ways(
            "[{a, o} | {k, a} <- <<protein, accession_num>>; {k2, o} <- <<protein, organism>>; k = k2]",
        );
        let bag = v.expect_bag().unwrap();
        assert_eq!(bag.len(), 2);
        assert!(bag.contains(&Value::pair(Value::str("P100"), Value::str("human"))));
    }

    #[test]
    fn composite_key_join_matches_naive() {
        // The paper's GAV-rewritten queries join on {source, key} pairs: a run of
        // two equality filters after the generator forms one composite hash key.
        let mut m = MapExtents::new();
        m.insert(
            "acc",
            Bag::from_values(vec![
                Value::tuple(vec![Value::str("PEDRO"), Value::Int(1), Value::str("A")]),
                Value::tuple(vec![Value::str("gpmDB"), Value::Int(1), Value::str("B")]),
                Value::tuple(vec![Value::str("PEDRO"), Value::Int(2), Value::str("C")]),
            ]),
        );
        m.insert(
            "descr",
            Bag::from_values(vec![
                Value::tuple(vec![Value::str("PEDRO"), Value::Int(1), Value::str("d1")]),
                Value::tuple(vec![Value::str("gpmDB"), Value::Int(2), Value::str("d2")]),
                Value::tuple(vec![Value::str("PEDRO"), Value::Int(2), Value::str("d3")]),
            ]),
        );
        let q = parse("[{x, d} | {s, k, x} <- <<acc>>; {s2, k2, d} <- <<descr>>; s2 = s; k2 = k]")
            .unwrap();
        let planned = Evaluator::new(&m).eval_closed(&q).unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        let planned_bag = planned.expect_bag().unwrap();
        assert_eq!(planned_bag.items(), naive.expect_bag().unwrap().items());
        assert_eq!(
            planned_bag.items(),
            &[
                Value::pair(Value::str("A"), Value::str("d1")),
                Value::pair(Value::str("C"), Value::str("d3")),
            ]
        );
    }

    #[test]
    fn join_with_flipped_equality_sides() {
        let v = run_both_ways(
            "[{a, o} | {k, a} <- <<protein, accession_num>>; {k2, o} <- <<protein, organism>>; k2 = k]",
        );
        assert_eq!(v.expect_bag().unwrap().len(), 2);
    }

    #[test]
    fn join_preserves_duplicate_multiplicities() {
        let mut m = MapExtents::new();
        m.insert_pairs("l,v", vec![(1, "a"), (1, "b"), (2, "c")]);
        m.insert_pairs("r,v", vec![(1, "x"), (1, "x"), (3, "y")]);
        let q = parse("[{x, y} | {k1, x} <- <<l, v>>; {k2, y} <- <<r, v>>; k1 = k2]").unwrap();
        let planned = Evaluator::new(&m).eval_closed(&q).unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        let planned_bag = planned.expect_bag().unwrap();
        assert_eq!(planned_bag.items(), naive.expect_bag().unwrap().items());
        // (1,a)x2 + (1,b)x2: key 1 matches both duplicate right rows.
        assert_eq!(planned_bag.len(), 4);
        assert_eq!(
            planned_bag.multiplicity(&Value::pair(Value::str("a"), Value::str("x"))),
            2
        );
    }

    #[test]
    fn three_way_chain_join_agrees_with_naive() {
        let v = run_both_ways(
            "[{a, o, s} | {k, a} <- <<protein, accession_num>>; {k2, o} <- <<protein, organism>>; k = k2; {k3, s} <- <<peptidehit, score>>; k3 = k3]",
        );
        // Every (accession, organism) pair crosses with all three peptide hits.
        assert_eq!(v.expect_bag().unwrap().len(), 6);
    }

    #[test]
    fn correlated_generator_falls_back_to_nested_loops() {
        // The inner generator's source mentions `k` from the outer generator, so the
        // planner must not hoist it.
        let v = run_both_ways("[{k, n} | k <- <<protein>>; n <- [k, k]; n = k]");
        assert_eq!(v.expect_bag().unwrap().len(), 6);
    }

    #[test]
    fn join_key_matches_across_int_and_float() {
        let mut m = MapExtents::new();
        m.insert(
            "l,v",
            Bag::from_values(vec![Value::pair(Value::Int(1), Value::str("a"))]),
        );
        m.insert(
            "r,v",
            Bag::from_values(vec![Value::pair(Value::Float(1.0), Value::str("b"))]),
        );
        let q = parse("[{x, y} | {k1, x} <- <<l, v>>; {k2, y} <- <<r, v>>; k1 = k2]").unwrap();
        let planned = Evaluator::new(&m).eval_closed(&q).unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        assert_eq!(planned, naive);
        assert_eq!(planned.expect_bag().unwrap().len(), 1);
    }

    #[test]
    fn aggregates_over_comprehensions() {
        assert_eq!(run("count [k | k <- <<protein>>]"), Value::Int(3));
        assert_eq!(run("count <<protein>>"), Value::Int(3));
        assert_eq!(run("max [k | k <- <<protein>>]"), Value::Int(3));
    }

    #[test]
    fn bag_union_duplicates_preserved() {
        let v = run("<<protein>> ++ <<protein>>");
        assert_eq!(v.expect_bag().unwrap().len(), 6);
    }

    #[test]
    fn bag_difference() {
        let v = run("<<protein>> -- [k | k <- <<protein>>; k = 1]");
        assert_eq!(v.expect_bag().unwrap().len(), 2);
    }

    #[test]
    fn nested_comprehension_with_correlation() {
        let v = run_both_ways(
            "[{k, count [s | {k2, s} <- <<peptidehit, score>>; k2 = k]} | k <- [10, 11, 99]]",
        );
        let bag = v.expect_bag().unwrap();
        assert!(bag.contains(&Value::pair(Value::Int(10), Value::Int(1))));
        assert!(bag.contains(&Value::pair(Value::Int(99), Value::Int(0))));
    }

    #[test]
    fn let_and_if() {
        assert_eq!(
            run("let n = count <<protein>> in if n > 2 then 'many' else 'few'"),
            Value::str("many")
        );
    }

    #[test]
    fn binding_qualifier() {
        let v = run("[{k, n} | k <- <<protein>>; let n = k * 10; n > 10]");
        let bag = v.expect_bag().unwrap();
        assert_eq!(bag.len(), 2);
        assert!(bag.contains(&Value::pair(Value::Int(3), Value::Int(30))));
    }

    #[test]
    fn literal_pattern_in_generator_filters() {
        let mut m = MapExtents::new();
        m.insert(
            "uprotein",
            Bag::from_values(vec![
                Value::pair(Value::str("PEDRO"), Value::Int(1)),
                Value::pair(Value::str("gpmDB"), Value::Int(2)),
            ]),
        );
        let q = parse("[k | {'PEDRO', k} <- <<uprotein>>]").unwrap();
        let v = Evaluator::new(m).eval_closed(&q).unwrap();
        assert_eq!(v.expect_bag().unwrap().items(), &[Value::Int(1)]);
    }

    #[test]
    fn literal_pattern_in_hash_joined_generator_filters() {
        let mut m = MapExtents::new();
        m.insert_keys("keys", vec![1, 2]);
        m.insert(
            "uprotein,acc",
            Bag::from_values(vec![
                Value::tuple(vec![Value::str("PEDRO"), Value::Int(1), Value::str("A")]),
                Value::tuple(vec![Value::str("gpmDB"), Value::Int(1), Value::str("B")]),
                Value::tuple(vec![Value::str("PEDRO"), Value::Int(2), Value::str("C")]),
            ]),
        );
        let q =
            parse("[x | k <- <<keys>>; {'PEDRO', k2, x} <- <<uprotein, acc>>; k2 = k]").unwrap();
        let planned = Evaluator::new(&m).eval_closed(&q).unwrap();
        let naive = Evaluator::new(&m)
            .with_nested_loops()
            .eval_closed(&q)
            .unwrap();
        assert_eq!(planned, naive);
        assert_eq!(
            planned.expect_bag().unwrap().items(),
            &[Value::str("A"), Value::str("C")]
        );
    }

    #[test]
    fn range_evaluates_to_lower_bound() {
        assert_eq!(run("Range Void Any"), Value::Void);
        let v = run("Range [k | k <- <<protein>>] Any");
        assert_eq!(v.expect_bag().unwrap().len(), 3);
    }

    #[test]
    fn arithmetic_and_strings() {
        assert_eq!(run("1 + 2 * 3"), Value::Int(7));
        assert_eq!(run("7 / 2"), Value::Int(3));
        assert_eq!(run("7.0 / 2"), Value::Float(3.5));
        assert_eq!(run("'a' + 'b'"), Value::str("ab"));
        assert_eq!(run("-(3)"), Value::Int(-3));
    }

    #[test]
    fn division_by_zero_reported() {
        let q = parse("1 / 0").unwrap();
        assert_eq!(
            Evaluator::new(NoExtents).eval_closed(&q),
            Err(EvalError::DivisionByZero)
        );
    }

    #[test]
    fn unbound_variable_reported() {
        let q = parse("missing + 1").unwrap();
        assert!(matches!(
            Evaluator::new(NoExtents).eval_closed(&q),
            Err(EvalError::UnboundVariable(_))
        ));
    }

    #[test]
    fn boolean_short_circuit() {
        // The right operand would divide by zero; `and` must not evaluate it.
        assert_eq!(run("false and (1 / 0 = 1)"), Value::Bool(false));
        assert_eq!(run("true or (1 / 0 = 1)"), Value::Bool(true));
        assert_eq!(run("not false"), Value::Bool(true));
    }

    #[test]
    fn comparisons() {
        assert_eq!(run("2 < 3"), Value::Bool(true));
        assert_eq!(run("'abc' <> 'abd'"), Value::Bool(true));
        assert_eq!(run("3 >= 3"), Value::Bool(true));
    }
}
