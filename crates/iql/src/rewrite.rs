//! Query rewriting utilities.
//!
//! These are the workhorses of GAV unfolding and pathway-based reformulation in the
//! `automed` crate: substituting scheme references by their defining queries, renaming
//! scheme references, and collecting the schemes a query depends on.

use crate::ast::{Expr, Qualifier, SchemeRef};
use std::collections::{BTreeMap, BTreeSet};

/// Collect the *free* variables of an expression: variables read without being bound
/// by an enclosing comprehension generator, `let` qualifier or `let … in` body. The
/// comprehension planner uses this to decide whether a generator's source is
/// independent of the variables bound earlier in the same comprehension (and can
/// therefore be evaluated once and hash-indexed).
pub fn free_vars(expr: &Expr) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    free_vars_into(expr, &BTreeSet::new(), &mut out);
    out
}

fn free_vars_into(expr: &Expr, bound: &BTreeSet<String>, out: &mut BTreeSet<String>) {
    match expr {
        Expr::Var(name) => {
            if !bound.contains(name) {
                out.insert(name.clone());
            }
        }
        // Parameters are not variables: they resolve through the execution's
        // parameter set, never through the lexical environment.
        Expr::Lit(_) | Expr::Param(_) | Expr::Scheme(_) | Expr::Void | Expr::Any => {}
        Expr::Tuple(items) | Expr::Bag(items) => {
            for e in items {
                free_vars_into(e, bound, out);
            }
        }
        Expr::Comp { head, qualifiers } => {
            let mut scope = bound.clone();
            for q in qualifiers {
                match q {
                    Qualifier::Generator { pattern, source } => {
                        free_vars_into(source, &scope, out);
                        scope.extend(pattern.bound_vars().iter().map(|v| v.to_string()));
                    }
                    Qualifier::Filter(e) => free_vars_into(e, &scope, out),
                    Qualifier::Binding { pattern, value } => {
                        free_vars_into(value, &scope, out);
                        scope.extend(pattern.bound_vars().iter().map(|v| v.to_string()));
                    }
                }
            }
            free_vars_into(head, &scope, out);
        }
        Expr::Apply { args, .. } => {
            for e in args {
                free_vars_into(e, bound, out);
            }
        }
        Expr::BinOp { lhs, rhs, .. } => {
            free_vars_into(lhs, bound, out);
            free_vars_into(rhs, bound, out);
        }
        Expr::UnOp { expr, .. } => free_vars_into(expr, bound, out),
        Expr::If {
            cond,
            then,
            otherwise,
        } => {
            free_vars_into(cond, bound, out);
            free_vars_into(then, bound, out);
            free_vars_into(otherwise, bound, out);
        }
        Expr::Let {
            pattern,
            value,
            body,
        } => {
            free_vars_into(value, bound, out);
            let mut scope = bound.clone();
            scope.extend(pattern.bound_vars().iter().map(|v| v.to_string()));
            free_vars_into(body, &scope, out);
        }
        Expr::Range { lower, upper } => {
            free_vars_into(lower, bound, out);
            free_vars_into(upper, bound, out);
        }
    }
}

/// Collect every scheme referenced anywhere in the expression (duplicates removed,
/// deterministic order).
pub fn collect_schemes(expr: &Expr) -> BTreeSet<SchemeRef> {
    let mut out = BTreeSet::new();
    visit(expr, &mut |e| {
        if let Expr::Scheme(s) = e {
            out.insert(s.clone());
        }
    });
    out
}

/// Collect every query-parameter name (`?name` placeholder) occurring anywhere
/// in the expression (duplicates removed, deterministic order). Preparing a
/// query uses this to validate binding sets, and the planner uses it to keep
/// parameter-dependent data out of cached plans.
pub fn collect_params(expr: &Expr) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    visit(expr, &mut |e| {
        if let Expr::Param(p) = e {
            out.insert(p.clone());
        }
    });
    out
}

/// Substitute `?name` placeholders by literal expressions of their bound
/// values. Parameters without a binding are left untouched; bound values that
/// have no literal spelling (nested bags of tuples are fine; `Void`/`Any` are
/// kept as their expression forms) substitute structurally.
///
/// This is the *reference semantics* of prepared execution: running a prepared
/// query under a binding set must answer exactly like the literal-substituted
/// query — the differential test suite holds the two sides together.
pub fn substitute_params(expr: &Expr, params: &crate::env::Params) -> Expr {
    transform(expr, &|e| match e {
        Expr::Param(name) => params.get(name).map(value_to_expr),
        _ => None,
    })
}

/// Spell a runtime value as the expression that evaluates back to it.
fn value_to_expr(value: &crate::value::Value) -> Expr {
    use crate::ast::Literal;
    use crate::value::Value;
    match value {
        Value::Null => Expr::Lit(Literal::Null),
        Value::Bool(b) => Expr::Lit(Literal::Bool(*b)),
        Value::Int(i) => Expr::Lit(Literal::Int(*i)),
        Value::Float(f) => Expr::Lit(Literal::Float(*f)),
        Value::Str(s) => Expr::Lit(Literal::Str(s.to_string())),
        Value::Tuple(items) => Expr::Tuple(items.iter().map(value_to_expr).collect()),
        Value::Bag(bag) => Expr::Bag(bag.iter().map(value_to_expr).collect()),
        Value::Void => Expr::Void,
        Value::Any => Expr::Any,
    }
}

/// Substitute scheme references by expressions according to `substitutions`.
/// References not present in the map are left untouched.
pub fn substitute_schemes(expr: &Expr, substitutions: &BTreeMap<SchemeRef, Expr>) -> Expr {
    transform(expr, &|e| match e {
        Expr::Scheme(s) => substitutions.get(s).cloned(),
        _ => None,
    })
}

/// Rename scheme references according to `renames` (old scheme → new scheme).
pub fn rename_schemes(expr: &Expr, renames: &BTreeMap<SchemeRef, SchemeRef>) -> Expr {
    transform(expr, &|e| match e {
        Expr::Scheme(s) => renames.get(s).map(|n| Expr::Scheme(n.clone())),
        _ => None,
    })
}

/// Whether the expression references the given scheme.
pub fn references_scheme(expr: &Expr, scheme: &SchemeRef) -> bool {
    collect_schemes(expr).contains(scheme)
}

/// Apply `f` to every node bottom-up; if `f` returns `Some`, the node is replaced by
/// the returned expression (and not traversed further).
pub fn transform(expr: &Expr, f: &dyn Fn(&Expr) -> Option<Expr>) -> Expr {
    if let Some(replacement) = f(expr) {
        return replacement;
    }
    match expr {
        Expr::Lit(_) | Expr::Var(_) | Expr::Param(_) | Expr::Scheme(_) | Expr::Void | Expr::Any => {
            expr.clone()
        }
        Expr::Tuple(items) => Expr::Tuple(items.iter().map(|e| transform(e, f)).collect()),
        Expr::Bag(items) => Expr::Bag(items.iter().map(|e| transform(e, f)).collect()),
        Expr::Comp { head, qualifiers } => Expr::Comp {
            head: Box::new(transform(head, f)),
            qualifiers: qualifiers
                .iter()
                .map(|q| match q {
                    Qualifier::Generator { pattern, source } => Qualifier::Generator {
                        pattern: pattern.clone(),
                        source: transform(source, f),
                    },
                    Qualifier::Filter(e) => Qualifier::Filter(transform(e, f)),
                    Qualifier::Binding { pattern, value } => Qualifier::Binding {
                        pattern: pattern.clone(),
                        value: transform(value, f),
                    },
                })
                .collect(),
        },
        Expr::Apply { function, args } => Expr::Apply {
            function: function.clone(),
            args: args.iter().map(|e| transform(e, f)).collect(),
        },
        Expr::BinOp { op, lhs, rhs } => Expr::BinOp {
            op: *op,
            lhs: Box::new(transform(lhs, f)),
            rhs: Box::new(transform(rhs, f)),
        },
        Expr::UnOp { op, expr } => Expr::UnOp {
            op: *op,
            expr: Box::new(transform(expr, f)),
        },
        Expr::If {
            cond,
            then,
            otherwise,
        } => Expr::If {
            cond: Box::new(transform(cond, f)),
            then: Box::new(transform(then, f)),
            otherwise: Box::new(transform(otherwise, f)),
        },
        Expr::Let {
            pattern,
            value,
            body,
        } => Expr::Let {
            pattern: pattern.clone(),
            value: Box::new(transform(value, f)),
            body: Box::new(transform(body, f)),
        },
        Expr::Range { lower, upper } => Expr::Range {
            lower: Box::new(transform(lower, f)),
            upper: Box::new(transform(upper, f)),
        },
    }
}

/// Visit every sub-expression (pre-order).
pub fn visit(expr: &Expr, f: &mut dyn FnMut(&Expr)) {
    f(expr);
    match expr {
        Expr::Lit(_) | Expr::Var(_) | Expr::Param(_) | Expr::Scheme(_) | Expr::Void | Expr::Any => {
        }
        Expr::Tuple(items) | Expr::Bag(items) => {
            for e in items {
                visit(e, f);
            }
        }
        Expr::Comp { head, qualifiers } => {
            visit(head, f);
            for q in qualifiers {
                match q {
                    Qualifier::Generator { source, .. } => visit(source, f),
                    Qualifier::Filter(e) => visit(e, f),
                    Qualifier::Binding { value, .. } => visit(value, f),
                }
            }
        }
        Expr::Apply { args, .. } => {
            for e in args {
                visit(e, f);
            }
        }
        Expr::BinOp { lhs, rhs, .. } => {
            visit(lhs, f);
            visit(rhs, f);
        }
        Expr::UnOp { expr, .. } => visit(expr, f),
        Expr::If {
            cond,
            then,
            otherwise,
        } => {
            visit(cond, f);
            visit(then, f);
            visit(otherwise, f);
        }
        Expr::Let { value, body, .. } => {
            visit(value, f);
            visit(body, f);
        }
        Expr::Range { lower, upper } => {
            visit(lower, f);
            visit(upper, f);
        }
    }
}

/// Count the total number of AST nodes; used by benchmarks to report query sizes and
/// by the query processor to guard against runaway unfolding.
pub fn node_count(expr: &Expr) -> usize {
    let mut n = 0;
    visit(expr, &mut |_| n += 1);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn collect_schemes_finds_all() {
        let q = parse(
            "[{k1, k2} | {k1, x} <- <<upeptidehit, dbsearch>>; {k2, y} <- <<uproteinhit, dbsearch>>; x = y]",
        )
        .unwrap();
        let schemes = collect_schemes(&q);
        assert_eq!(schemes.len(), 2);
        assert!(schemes.contains(&SchemeRef::column("upeptidehit", "dbsearch")));
    }

    #[test]
    fn substitute_unfolds_view_definition() {
        // Global object <<uprotein>> is defined as a comprehension over the source.
        let query = parse("count <<uprotein>>").unwrap();
        let view = parse("[{'PEDRO', k} | k <- <<protein>>]").unwrap();
        let mut subs = BTreeMap::new();
        subs.insert(SchemeRef::table("uprotein"), view);
        let unfolded = substitute_schemes(&query, &subs);
        let schemes = collect_schemes(&unfolded);
        assert!(schemes.contains(&SchemeRef::table("protein")));
        assert!(!schemes.contains(&SchemeRef::table("uprotein")));
    }

    #[test]
    fn substitution_reaches_nested_positions() {
        let query = parse("[{k, x} | {k, x} <- <<a, b>>; member(<<c>>, k)]").unwrap();
        let mut subs = BTreeMap::new();
        subs.insert(SchemeRef::table("c"), parse("[1, 2]").unwrap());
        let out = substitute_schemes(&query, &subs);
        assert!(!references_scheme(&out, &SchemeRef::table("c")));
        assert!(references_scheme(&out, &SchemeRef::column("a", "b")));
    }

    #[test]
    fn rename_changes_only_matching_schemes() {
        let query = parse("<<protein>> ++ <<peptide>>").unwrap();
        let mut renames = BTreeMap::new();
        renames.insert(
            SchemeRef::table("protein"),
            SchemeRef::table("PEDRO_protein"),
        );
        let renamed = rename_schemes(&query, &renames);
        let schemes = collect_schemes(&renamed);
        assert!(schemes.contains(&SchemeRef::table("PEDRO_protein")));
        assert!(schemes.contains(&SchemeRef::table("peptide")));
        assert!(!schemes.contains(&SchemeRef::table("protein")));
    }

    #[test]
    fn node_count_reasonable() {
        let q = parse("[x | x <- <<t>>]").unwrap();
        assert!(node_count(&q) >= 3);
        let bigger = parse("[x | x <- <<t>>; x > 1; x < 9]").unwrap();
        assert!(node_count(&bigger) > node_count(&q));
    }

    #[test]
    fn free_vars_respects_comprehension_scope() {
        let q = parse("[{k, x, outer} | {k, x} <- <<t, c>>; k = pivot]").unwrap();
        let fv = free_vars(&q);
        assert!(fv.contains("outer"));
        assert!(fv.contains("pivot"));
        assert!(!fv.contains("k"));
        assert!(!fv.contains("x"));
    }

    #[test]
    fn free_vars_respects_let_scope() {
        let q = parse("let n = m in n + q").unwrap();
        let fv = free_vars(&q);
        assert_eq!(
            fv.into_iter().collect::<Vec<_>>(),
            vec!["m".to_string(), "q".to_string()]
        );
    }

    #[test]
    fn no_schemes_in_closed_expression() {
        let q = parse("1 + 2").unwrap();
        assert!(collect_schemes(&q).is_empty());
        assert!(!q.references_schemes());
    }
}
