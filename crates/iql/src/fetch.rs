//! The process-wide fetch-thread budget.
//!
//! Several layers of the query engine fan work out on scoped threads: the
//! evaluator prefetches independent generator sources, the virtual-extent
//! resolver evaluates per-source contributions concurrently, and a dataspace
//! answers batched queries in parallel. Each fan-out used to cap its own spawn
//! count at the machine's parallelism — but the fan-outs *nest* (a batched query
//! resolves virtual extents whose contributions prefetch join sides), so the
//! per-call caps multiplied and a deep workload could spawn far more threads
//! than cores.
//!
//! [`FetchPool`] replaces those per-call caps with one process-wide semaphore.
//! A fan-out asks for up to `n - 1` worker permits (the calling thread always
//! works too, so a fan-out of `n` tasks needs at most `n - 1` extra threads);
//! whatever the pool cannot grant is simply not spawned and that share of the
//! work runs inline on the caller. Acquisition never blocks — there is no
//! waiting and therefore no possibility of deadlock between nested fan-outs —
//! and permits release on drop, so the number of *extra* fetch threads alive in
//! the whole process never exceeds the pool capacity.
//!
//! ```
//! use iql::fetch::FetchPool;
//!
//! let permits = FetchPool::global().acquire_up_to(3);
//! // spawn `permits.count()` workers (possibly zero), run the rest inline…
//! drop(permits); // returns the permits to the global budget
//! ```

use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::OnceLock;
use std::thread;

/// A non-blocking counting semaphore bounding fetch worker threads. One global
/// instance ([`FetchPool::global`]) is shared by every fan-out in the process.
#[derive(Debug)]
pub struct FetchPool {
    available: AtomicIsize,
    capacity: usize,
}

impl FetchPool {
    /// A pool with the given number of worker permits (tests and embedders; the
    /// engine itself uses [`FetchPool::global`]).
    pub fn with_capacity(capacity: usize) -> Self {
        FetchPool {
            available: AtomicIsize::new(capacity as isize),
            capacity,
        }
    }

    /// The shared process-wide pool. Its capacity is the machine's available
    /// parallelism: with every caller thread also working, a saturated system
    /// runs at most `cores + live fan-out callers` runnable threads.
    pub fn global() -> &'static FetchPool {
        static GLOBAL: OnceLock<FetchPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            FetchPool::with_capacity(
                thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(4),
            )
        })
    }

    /// The total number of permits the pool was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Permits currently free (may be stale the moment it returns; useful for
    /// diagnostics only).
    pub fn available(&self) -> usize {
        self.available.load(Ordering::Relaxed).max(0) as usize
    }

    /// Acquire up to `want` permits without blocking; the returned batch may
    /// hold fewer (including zero). Dropping the batch releases its permits.
    pub fn acquire_up_to(&self, want: usize) -> Permits<'_> {
        let mut granted = 0usize;
        while granted < want {
            let prev = self.available.fetch_sub(1, Ordering::AcqRel);
            if prev <= 0 {
                self.available.fetch_add(1, Ordering::AcqRel);
                break;
            }
            granted += 1;
        }
        Permits {
            pool: self,
            count: granted,
        }
    }
}

/// A batch of worker permits held from a [`FetchPool`]; released on drop.
#[derive(Debug)]
pub struct Permits<'a> {
    pool: &'a FetchPool,
    count: usize,
}

impl Permits<'_> {
    /// How many worker threads this batch allows the holder to spawn.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Release all but `keep` permits back to the pool immediately. Fan-outs
    /// that end up spawning fewer workers than they acquired for (ceil-division
    /// chunking can need fewer chunks than permits) must return the surplus
    /// rather than strand it for the duration of the fan-out.
    pub fn truncate(&mut self, keep: usize) {
        if self.count > keep {
            self.pool
                .available
                .fetch_add((self.count - keep) as isize, Ordering::AcqRel);
            self.count = keep;
        }
    }
}

impl Drop for Permits<'_> {
    fn drop(&mut self) {
        if self.count > 0 {
            self.pool
                .available
                .fetch_add(self.count as isize, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_at_most_capacity() {
        let pool = FetchPool::with_capacity(3);
        let a = pool.acquire_up_to(2);
        assert_eq!(a.count(), 2);
        let b = pool.acquire_up_to(5);
        assert_eq!(b.count(), 1, "only one permit left");
        let c = pool.acquire_up_to(1);
        assert_eq!(c.count(), 0, "exhausted pools grant nothing");
        drop(a);
        let d = pool.acquire_up_to(5);
        assert_eq!(d.count(), 2, "dropped permits return to the pool");
    }

    #[test]
    fn zero_requests_are_free() {
        let pool = FetchPool::with_capacity(1);
        let none = pool.acquire_up_to(0);
        assert_eq!(none.count(), 0);
        assert_eq!(pool.available(), 1);
    }

    #[test]
    fn global_pool_has_machine_capacity() {
        let pool = FetchPool::global();
        assert!(pool.capacity() >= 1);
    }

    #[test]
    fn truncate_returns_surplus_permits() {
        let pool = FetchPool::with_capacity(4);
        let mut a = pool.acquire_up_to(4);
        assert_eq!(a.count(), 4);
        a.truncate(1);
        assert_eq!(a.count(), 1);
        assert_eq!(pool.available(), 3, "surplus returned immediately");
        a.truncate(2); // growing is not a thing; keep stays at 1
        assert_eq!(a.count(), 1);
        drop(a);
        assert_eq!(pool.available(), 4);
    }

    #[test]
    fn concurrent_acquires_never_oversubscribe() {
        use std::sync::atomic::AtomicUsize;
        let pool = FetchPool::with_capacity(4);
        let held = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        let p = pool.acquire_up_to(2);
                        let now = held.fetch_add(p.count(), Ordering::SeqCst) + p.count();
                        peak.fetch_max(now, Ordering::SeqCst);
                        thread::yield_now();
                        held.fetch_sub(p.count(), Ordering::SeqCst);
                        drop(p);
                    }
                });
            }
        });
        // The concurrently-held permit count must never have exceeded capacity.
        assert!(peak.load(Ordering::SeqCst) <= 4, "peak {:?}", peak);
        assert_eq!(pool.available(), 4, "all permits replenished");
    }
}
