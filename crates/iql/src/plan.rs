//! The logical plan layer: planned comprehension steps, join statistics, the
//! bounded [`PlanCache`] with its persisted key histograms, standing plans, and
//! the step/engine probes the differential harness asserts against.
//!
//! Planning lives in [`crate::eval`] (the [`crate::eval::Evaluator`] builds
//! `Plan`s); execution lives in [`crate::physical`] (the recursive row
//! executor and the vectorised columnar executor both run the *same* step
//! lists). This module owns the shapes they share.

use crate::ast::{Expr, Pattern, SchemeRef};
use crate::bushy::JoinTree;
use crate::index::PointIndex;
use crate::lru::LruMap;
use crate::physical::columnar::ColumnarPlan;
use crate::physical::ExecEngine;
use crate::value::{Bag, Value};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, OnceLock, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Acquire a read guard, ignoring poisoning (cache state is rebuildable).
pub(crate) fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Acquire a write guard, ignoring poisoning (cache state is rebuildable).
pub(crate) fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// How a planned join step executes (reported by [`Evaluator::explain`](crate::eval::Evaluator::explain)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Textual orientation: the earlier generator scans, the later one is hashed.
    Hash,
    /// Statistics-driven reorder: the *smaller, earlier* extent was hashed, the
    /// bigger one scans, and output order is restored by a stable positional sort.
    Reordered,
    /// One step of a *greedily* reordered generator chain (more generators than
    /// the DP bound, or the enumerator bailed): the join graph was joined
    /// greedily smallest-build-side-first, and the nested-loop output order
    /// restored by one final positional sort over the whole chain. Each
    /// `Multiway` entry reports one edge join of that chain.
    Multiway,
    /// One join node of a cost-based **bushy** join tree over the generator
    /// chain (see [`crate::bushy`]): the enumerator searched every connected
    /// tree shape and this node hash-joined the two subtrees' results, with the
    /// nested-loop output order restored by one final positional sort over the
    /// whole chain. Each `Bushy` entry reports one internal node, carrying the
    /// subtree rooted there; the last entry's tree spans the whole chain.
    Bushy {
        /// The join subtree rooted at this node; leaves are chain positions in
        /// textual generator order.
        tree: Arc<JoinTree>,
    },
    /// A generator plus a run of `var = ?param` / `var = literal` filters served
    /// by a secondary point-lookup index (see [`crate::IndexStore`]): each
    /// execution evaluates the key expressions under the current bindings and
    /// probes in O(1) instead of scanning the extent.
    IndexLookup,
}

/// Per-join planning statistics: cardinalities and the hash-index bucket histogram
/// the join-ordering decision was based on.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinStats {
    /// The orientation the planner chose.
    pub strategy: JoinStrategy,
    /// Rows that survived pattern matching into the hash index (build side).
    pub build_rows: usize,
    /// Rows on the probing side, when the planner knew them (join-pair planning).
    pub probe_rows: Option<usize>,
    /// Number of distinct join keys in the hash index (histogram buckets).
    pub distinct_keys: usize,
    /// Largest bucket in the hash index (worst-case key skew).
    pub max_bucket: usize,
    /// Estimated join output cardinality: `probe_rows × build_rows / distinct_keys`
    /// (present when `probe_rows` is known).
    pub estimated_output: Option<f64>,
    /// Rows the join **actually** produced. Joins that materialise at plan time
    /// (reordered pairs, greedy chains, bushy tree nodes) know this exactly;
    /// deferred probes (`Hash`, `IndexLookup`) report `None`. The adaptive
    /// re-optimiser compares this against the enumerator's estimate and replans
    /// with observed selectivities when they diverge (see [`PlanCache`]).
    pub actual_output: Option<usize>,
}

/// One step of a planned comprehension. Steps own their data (cloned AST fragments,
/// built indexes behind `Arc`) so a plan can outlive the evaluation that built it
/// and be shared through a [`PlanCache`].
pub(crate) enum Step {
    /// Plain generator: evaluate the source per incoming row and iterate.
    Iterate { pattern: Pattern, source: Expr },
    /// A generator whose source was already evaluated at plan time (leading
    /// generator of a join pair whose reorder was considered but not taken).
    Scan { pattern: Pattern, bag: Bag },
    /// A generator + run of equi-join filters fused into a hash join: the source was
    /// evaluated once and indexed by the (possibly composite) join key; each incoming
    /// row probes with the values of `probe_vars`.
    HashJoin {
        pattern: Pattern,
        probe_vars: Vec<String>,
        index: Arc<HashMap<Value, Vec<Value>>>,
    },
    /// A statistics-reordered join pair, fully materialised at plan time with the
    /// original nested-loop output order already restored: each row binds the outer
    /// pattern to `.0` and the inner pattern to `.1`.
    OrderedJoin {
        outer: Pattern,
        inner: Pattern,
        rows: Arc<Vec<(Value, Value)>>,
    },
    /// A fully reordered generator *chain* (three or more generators), joined
    /// greedily at plan time with the nested-loop output order already restored:
    /// each row binds the patterns in textual order to the row's elements.
    MultiJoin {
        patterns: Vec<Pattern>,
        rows: Arc<Vec<Vec<Value>>>,
    },
    /// A generator chain joined along a cost-enumerated **bushy** tree
    /// (recursive hash joins over sub-plans, executed at plan time) with the
    /// nested-loop output order already restored by one positional sort: each
    /// row binds the patterns in textual order to the row's elements.
    BushyJoin {
        patterns: Vec<Pattern>,
        rows: Arc<Vec<Vec<Value>>>,
    },
    /// A generator + run of point-equality filters (`var = ?param` /
    /// `var = literal`) served by a secondary index: the source's elements are
    /// bucketed by the filtered variables' values; each execution evaluates the
    /// key expressions (parameters resolve against the live bindings) and
    /// probes one bucket, whose elements keep source order.
    IndexLookup {
        pattern: Pattern,
        key_exprs: Vec<Expr>,
        index: Arc<PointIndex>,
    },
    /// A boolean filter.
    Filter(Expr),
    /// A `let` qualifier.
    Bind { pattern: Pattern, value: Expr },
}

/// The kind of one planned step, as counted by a [`StepProbe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepKind {
    /// A plain generator evaluated per incoming row.
    Iterate,
    /// A pre-evaluated generator scan.
    Scan,
    /// A fused equi-join probe against a prebuilt hash index.
    HashJoin,
    /// A statistics-reordered join pair, materialised at plan time.
    OrderedJoin,
    /// A greedily reordered generator chain, materialised at plan time.
    MultiJoin,
    /// A cost-enumerated bushy join tree, materialised at plan time.
    BushyJoin,
    /// A boolean filter.
    Filter,
    /// A `let` qualifier.
    Bind,
    /// A point-equality filter run probed against a secondary index.
    IndexLookup,
}

const STEP_KINDS: usize = 9;

/// Counts the steps of every plan the evaluator executes, by [`StepKind`].
///
/// Attach with [`Evaluator::with_step_probe`](crate::eval::Evaluator::with_step_probe). Each time a comprehension plan
/// begins executing (including re-executions of nested or correlated
/// comprehensions), every step in its step list is counted once. The
/// differential test harness uses this to assert that the strategies
/// [`Evaluator::explain`](crate::eval::Evaluator::explain) reports are the strategies that actually ran —
/// e.g. a [`JoinStrategy::Bushy`] explain must execute a
/// [`StepKind::BushyJoin`] step and vice versa.
#[derive(Debug, Default)]
pub struct StepProbe {
    counts: [AtomicU64; STEP_KINDS],
    /// Executions by engine: `[columnar, row]` (see [`ExecEngine`]).
    engines: [AtomicU64; 2],
}

impl StepProbe {
    /// A fresh probe with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many steps of `kind` have been executed so far.
    pub fn count(&self, kind: StepKind) -> u64 {
        self.counts[kind as usize].load(AtomicOrdering::Relaxed)
    }

    /// How many planned comprehension executions `engine` produced the
    /// result of so far. A mid-execution columnar abort (a runtime error
    /// re-run through the row engine for identical error reporting) counts
    /// as a row execution — the row engine produced the answer.
    pub fn engine_count(&self, engine: ExecEngine) -> u64 {
        self.engines[engine as usize].load(AtomicOrdering::Relaxed)
    }

    pub(crate) fn record_engine(&self, engine: ExecEngine) {
        self.engines[engine as usize].fetch_add(1, AtomicOrdering::Relaxed);
    }

    pub(crate) fn record(&self, kind: StepKind) {
        self.counts[kind as usize].fetch_add(1, AtomicOrdering::Relaxed);
    }
}

impl Step {
    pub(crate) fn kind(&self) -> StepKind {
        match self {
            Step::Iterate { .. } => StepKind::Iterate,
            Step::Scan { .. } => StepKind::Scan,
            Step::HashJoin { .. } => StepKind::HashJoin,
            Step::OrderedJoin { .. } => StepKind::OrderedJoin,
            Step::MultiJoin { .. } => StepKind::MultiJoin,
            Step::BushyJoin { .. } => StepKind::BushyJoin,
            Step::IndexLookup { .. } => StepKind::IndexLookup,
            Step::Filter(_) => StepKind::Filter,
            Step::Bind { .. } => StepKind::Bind,
        }
    }
}

/// A planned comprehension: the step list plus the statistics and cacheability
/// verdict produced while planning.
pub(crate) struct Plan {
    pub(crate) steps: Vec<Step>,
    pub(crate) join_stats: Vec<JoinStats>,
    /// True when every plan-time-evaluated source was a closed expression, so the
    /// baked-in indexes/rows are environment-independent and the plan may be cached.
    pub(crate) cacheable: bool,
    /// Actual-vs-estimated cardinality feedback collected while the bushy join
    /// tree executed (absent for plans without an enumerated chain).
    pub(crate) feedback: Option<PlanFeedback>,
    /// The lazily compiled columnar form of this plan, shared across every
    /// execution (a cached plan compiles once and every later execution —
    /// from any evaluator sharing the cache — reuses it). `None` inside the
    /// cell means the plan was inspected and found ineligible (an open or
    /// parameter-dependent generator source): the row engine runs instead.
    pub(crate) columnar: OnceLock<Option<Arc<ColumnarPlan>>>,
}

/// A retained plan for **incremental maintenance** of one comprehension: the
/// step list (planned without reordering, so textual output order is a
/// structural property of the steps), the position of the *lead generator* —
/// the first generator, which must iterate a scheme extent directly — and the
/// schemes the whole expression touches.
///
/// The soundness contract the caller must uphold (see
/// [`Evaluator::delta_standing`](crate::eval::Evaluator::delta_standing)): between building the plan and delta-applying
/// an append, **only the lead scheme's extent may change, and only by appending
/// at the tail**. Under that contract, the rows a full re-execution would add
/// are exactly the rows obtained by driving the appended lead elements through
/// the remaining steps — and they appear at the tail of the previous result, in
/// order, with multiplicities intact. Any other change (a non-lead extent
/// moved, a non-append mutation) invalidates the plan: rebuild it and
/// re-execute. Build with [`Evaluator::standing_plan`](crate::eval::Evaluator::standing_plan), which returns `None`
/// for shapes where the contract cannot be established (no leading scheme
/// iteration, or the lead scheme referenced more than once).
pub struct StandingPlan {
    pub(crate) head: Expr,
    pub(crate) steps: Vec<Step>,
    /// Index of the lead generator in `steps` (preceded only by filters/binds).
    pub(crate) lead: usize,
    pub(crate) lead_scheme: SchemeRef,
    pub(crate) touched: BTreeSet<SchemeRef>,
}

impl std::fmt::Debug for StandingPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StandingPlan")
            .field("head", &self.head)
            .field("steps", &self.steps.len())
            .field("lead", &self.lead)
            .field("lead_scheme", &self.lead_scheme)
            .field("touched", &self.touched)
            .finish()
    }
}

impl StandingPlan {
    /// The scheme whose tail-appends this plan can absorb incrementally.
    pub fn lead_scheme(&self) -> &SchemeRef {
        &self.lead_scheme
    }

    /// Every scheme the expression references (lead included) — the
    /// registration index for "which subscriptions does this insert affect".
    pub fn touched(&self) -> &BTreeSet<SchemeRef> {
        &self.touched
    }
}

/// Per-edge observed join selectivities, keyed by the normalised
/// `(min, max)` chain-position pair the edge connects.
pub(crate) type ObservedSelectivities = Vec<((usize, usize), f64)>;

/// Cardinality feedback from executing a bushy join tree at plan time: what
/// each cut *actually* selected, and how far the worst node strayed from the
/// enumerator's estimate. Stored with the cached plan; when the divergence
/// passes the evaluator's threshold the next execution re-enumerates with the
/// observed selectivities in place of the histogram estimates.
pub(crate) struct PlanFeedback {
    pub(crate) observed: ObservedSelectivities,
    /// Largest `actual / estimated` output ratio across the tree's join nodes
    /// (underestimates only — an overestimate materialised less than planned
    /// for, which never hurts).
    pub(crate) max_divergence: f64,
}

impl Plan {
    /// Estimated resident bytes of the plan's materialised state (indexes,
    /// pre-joined rows): the weight the [`PlanCache`]'s byte-aware eviction
    /// charges this entry. Values are `Arc`-shared, so per-row constants cover
    /// structure, not payload.
    pub(crate) fn approx_bytes(&self) -> u64 {
        let mut bytes = 256u64;
        for step in &self.steps {
            bytes += match step {
                Step::Scan { bag, .. } => bag.len() as u64 * 48,
                Step::HashJoin { index, .. } => index
                    .values()
                    .map(|bucket| bucket.len() as u64 * 48 + 96)
                    .sum::<u64>(),
                Step::IndexLookup { index, .. } => index.approx_bytes(),
                Step::OrderedJoin { rows, .. } => rows.len() as u64 * 112,
                Step::MultiJoin { patterns, rows } | Step::BushyJoin { patterns, rows } => {
                    rows.len() as u64 * (patterns.len() as u64 * 48 + 32)
                }
                Step::Iterate { .. } | Step::Filter(_) | Step::Bind { .. } => 64,
            };
        }
        bytes
    }
}

impl Plan {
    /// Assemble a freshly planned comprehension (columnar compilation deferred
    /// to the first columnar execution).
    pub(crate) fn assemble(
        steps: Vec<Step>,
        join_stats: Vec<JoinStats>,
        cacheable: bool,
        feedback: Option<PlanFeedback>,
    ) -> Plan {
        Plan {
            steps,
            join_stats,
            cacheable,
            feedback,
            columnar: OnceLock::new(),
        }
    }

    /// The columnar form of this plan for the comprehension head `head`,
    /// compiling it on first use. `None` when the plan is not columnar-eligible
    /// (some generator source is open or parameter-dependent). The head is part
    /// of the plan's identity — one cached plan serves exactly one expression —
    /// so caching the head projection inside the cell is sound.
    pub(crate) fn columnar(&self, head: &Expr) -> Option<Arc<ColumnarPlan>> {
        self.columnar
            .get_or_init(|| ColumnarPlan::compile(&self.steps, head).map(Arc::new))
            .clone()
    }
}

struct CacheEntry {
    version: u64,
    plan: Arc<Plan>,
    /// Observed selectivities awaiting a re-optimisation round (set when the
    /// plan's feedback diverged past the evaluator's threshold).
    pending: Option<Arc<ObservedSelectivities>>,
    /// Whether this entry already went through a re-optimisation round at this
    /// version (one round per version: prevents oscillation).
    reoptimized: bool,
}

/// What a [`PlanCache`] lookup found for an execution.
pub(crate) enum PlanLookup {
    /// A current plan: execute it as-is.
    Hit(Arc<Plan>),
    /// A current plan whose recorded cardinality feedback diverged: replan with
    /// the observed selectivities and keep whichever plan is actually cheaper.
    Reoptimize {
        plan: Arc<Plan>,
        observed: Arc<ObservedSelectivities>,
    },
    /// Nothing current cached.
    Miss,
}

/// A persisted per-extent join-key histogram: how the values a pattern binds to a
/// set of key variables distribute over a source's extent. The planner's
/// reordering estimates consult these instead of re-scanning the extent on every
/// plan (see [`PlanCache`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyHistogram {
    /// Rows that survived pattern matching and produced a key.
    pub rows: usize,
    /// Number of distinct key values.
    pub distinct: usize,
    /// Largest key group (worst-case skew).
    pub max_bucket: usize,
}

/// Identity of a histogram: the source expression, the generator pattern that
/// extracts the key, and the (ordered) key variables.
pub(crate) type StatsKey = (Expr, Pattern, Vec<String>);

struct StatsEntry {
    version: u64,
    histogram: KeyHistogram,
    /// Matched-row count the histogram covered: an append-only provider
    /// refreshes a stale histogram by counting only rows past this point.
    scanned: usize,
    /// The per-key counts behind the histogram, kept so a refresh can extend
    /// them copy-on-write instead of recounting the whole extent.
    counts: Arc<HashMap<Value, usize>>,
}

/// Default number of plans a [`PlanCache`] holds before evicting.
pub const DEFAULT_PLAN_CAPACITY: usize = 512;

/// Default byte budget for a [`PlanCache`]'s materialised plan state (64 MiB of
/// estimated footprint; see [`PlanCache::with_capacity_and_bytes`]).
pub const DEFAULT_PLAN_CACHE_BYTES: u64 = 64 << 20;

/// Default actual/estimated divergence factor past which a cached plan
/// re-optimises (see [`Evaluator::with_reopt_factor`](crate::eval::Evaluator::with_reopt_factor)).
pub const DEFAULT_REOPT_FACTOR: f64 = 4.0;

/// Bushy nodes below this many actual rows never count towards re-optimisation
/// divergence: ratios over tiny results are noise, and replanning them saves
/// nothing.
pub(crate) const MIN_FEEDBACK_ROWS: f64 = 8.0;

/// A bounded memo of built comprehension plans, keyed by expression identity,
/// plus the per-extent join-key histograms the reordering cost model reuses
/// across plans.
///
/// # Knobs and contract
///
/// * Attach with [`Evaluator::with_plan_cache`](crate::eval::Evaluator::with_plan_cache); share one cache across many
///   evaluations of the same workload (e.g. one cache per dataspace).
/// * Entries are keyed by the comprehension expression itself — [`Expr`]
///   implements `Hash`/`Eq`, so a lookup hashes the AST instead of
///   pretty-printing a string key — and guarded by [`ExtentProvider::version`](crate::eval::ExtentProvider::version):
///   when the provider mutates (insert, schema change) its version changes and
///   stale plans rebuild transparently on next use.
/// * The memo is **bounded**: at most [`PlanCache::capacity`] plans are held and
///   the least recently used plan is evicted on overflow
///   ([`PlanCache::with_capacity`] configures the bound, default
///   [`DEFAULT_PLAN_CAPACITY`]). Long-lived services can therefore share one
///   cache for the life of the process without unbounded growth.
/// * A cache must only be shared between evaluators over the **same logical
///   provider** — the version stamp detects staleness, not provider identity.
/// * Only plans whose plan-time-evaluated sources are closed expressions are
///   stored, so cached plans never capture environment-dependent data. The same
///   rule applies to the histogram side-table.
/// * [`PlanCache::invalidate_all`] is the explicit invalidation hook for mutations
///   a provider's version cannot see (e.g. swapping view definitions).
///
/// ```
/// use iql::{parse, Evaluator, MapExtents, PlanCache};
/// use std::sync::Arc;
///
/// let mut extents = MapExtents::new();
/// extents.insert_pairs("t,v", vec![(1, "a"), (2, "b")]);
/// let cache = Arc::new(PlanCache::with_capacity(64));
/// let ev = Evaluator::new(&extents).with_plan_cache(Arc::clone(&cache));
/// let q = parse("[{x, y} | {k, x} <- <<t, v>>; {k2, y} <- <<t, v>>; k2 = k]").unwrap();
/// ev.eval_closed(&q).unwrap();
/// ev.eval_closed(&q).unwrap(); // second run: planning skipped entirely
/// assert!(cache.hit_count() >= 1);
/// assert!(cache.len() <= cache.capacity());
/// ```
#[derive(Debug)]
pub struct PlanCache {
    entries: RwLock<LruMap<Expr, CacheEntry>>,
    stats: RwLock<LruMap<StatsKey, StatsEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    reopts: AtomicU64,
    histogram_refreshes: AtomicU64,
}

impl std::fmt::Debug for CacheEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheEntry")
            .field("version", &self.version)
            .field("steps", &self.plan.steps.len())
            .field("reoptimized", &self.reoptimized)
            .finish()
    }
}

impl std::fmt::Debug for StatsEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatsEntry")
            .field("version", &self.version)
            .field("histogram", &self.histogram)
            .finish()
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_PLAN_CAPACITY)
    }
}

impl PlanCache {
    /// An empty plan cache with the default capacity ([`DEFAULT_PLAN_CAPACITY`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty plan cache bounded to `capacity` plans (LRU eviction past that)
    /// with the default byte budget ([`DEFAULT_PLAN_CACHE_BYTES`]).
    /// The histogram side-table is bounded to four times the plan capacity —
    /// histograms are per (extent, key) rather than per query, far smaller, and
    /// several are consulted while planning one comprehension.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_bytes(capacity, DEFAULT_PLAN_CACHE_BYTES)
    }

    /// An empty plan cache bounded by plan count **and** by the estimated bytes
    /// of materialised plan state. Cached plans carry real data — hash-join
    /// indexes, pre-joined chain rows, point-lookup indexes — and two plans can
    /// differ in footprint by orders of magnitude, so eviction weighs each
    /// entry by its estimated bytes besides counting it (see
    /// [`crate::lru::LruMap::with_weight_budget`]). The histogram side-table
    /// gets a quarter of the byte budget.
    pub fn with_capacity_and_bytes(capacity: usize, byte_budget: u64) -> Self {
        PlanCache {
            entries: RwLock::new(LruMap::with_weight_budget(capacity, byte_budget)),
            stats: RwLock::new(LruMap::with_weight_budget(
                capacity.saturating_mul(4).max(4),
                (byte_budget / 4).max(1),
            )),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            reopts: AtomicU64::new(0),
            histogram_refreshes: AtomicU64::new(0),
        }
    }

    /// The maximum number of plans held before LRU eviction.
    pub fn capacity(&self) -> usize {
        read_lock(&self.entries).capacity()
    }

    /// How many plans have been evicted for capacity so far.
    pub fn eviction_count(&self) -> u64 {
        read_lock(&self.entries).evictions()
    }

    /// Drop every cached plan and histogram (explicit invalidation hook).
    pub fn invalidate_all(&self) {
        write_lock(&self.entries).clear();
        write_lock(&self.stats).clear();
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        read_lock(&self.entries).len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of persisted per-extent key histograms.
    pub fn histogram_count(&self) -> usize {
        read_lock(&self.stats).len()
    }

    /// Lookups that returned a current plan.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(AtomicOrdering::Relaxed)
    }

    /// Lookups that found nothing (or only a stale plan).
    pub fn miss_count(&self) -> u64 {
        self.misses.load(AtomicOrdering::Relaxed)
    }

    /// Cached plans re-optimised after their recorded cardinality feedback
    /// diverged past the evaluator's threshold.
    pub fn reopt_count(&self) -> u64 {
        self.reopts.load(AtomicOrdering::Relaxed)
    }

    /// Stale key histograms refreshed copy-on-write from an appended tail
    /// instead of being recounted from scratch (append-only providers only).
    pub fn histogram_refresh_count(&self) -> u64 {
        self.histogram_refreshes.load(AtomicOrdering::Relaxed)
    }

    /// Estimated resident bytes of all cached plans' materialised state.
    pub fn approx_bytes(&self) -> u64 {
        read_lock(&self.entries).total_weight()
    }

    pub(crate) fn lookup(&self, key: &Expr, version: u64) -> PlanLookup {
        let entries = read_lock(&self.entries);
        match entries.get(key) {
            Some(entry) if entry.version == version => {
                self.hits.fetch_add(1, AtomicOrdering::Relaxed);
                match &entry.pending {
                    Some(observed) if !entry.reoptimized => PlanLookup::Reoptimize {
                        plan: Arc::clone(&entry.plan),
                        observed: Arc::clone(observed),
                    },
                    _ => PlanLookup::Hit(Arc::clone(&entry.plan)),
                }
            }
            _ => {
                self.misses.fetch_add(1, AtomicOrdering::Relaxed);
                PlanLookup::Miss
            }
        }
    }

    pub(crate) fn store(
        &self,
        key: Expr,
        version: u64,
        plan: Arc<Plan>,
        pending: Option<Arc<ObservedSelectivities>>,
    ) {
        let weight = plan.approx_bytes();
        write_lock(&self.entries).insert_weighted(
            key,
            CacheEntry {
                version,
                plan,
                pending,
                reoptimized: false,
            },
            weight,
        );
    }

    /// Store the winner of a re-optimisation round, marked so the entry does
    /// not re-enter the feedback loop until the provider's version changes.
    pub(crate) fn store_reoptimized(&self, key: Expr, version: u64, plan: Arc<Plan>) {
        self.reopts.fetch_add(1, AtomicOrdering::Relaxed);
        let weight = plan.approx_bytes();
        write_lock(&self.entries).insert_weighted(
            key,
            CacheEntry {
                version,
                plan,
                pending: None,
                reoptimized: true,
            },
            weight,
        );
    }

    /// A current persisted histogram for `(source, pattern, key vars)`, if any.
    pub(crate) fn histogram(&self, key: &StatsKey, version: u64) -> Option<KeyHistogram> {
        let stats = read_lock(&self.stats);
        match stats.get(key) {
            Some(entry) if entry.version == version => Some(entry.histogram),
            _ => None,
        }
    }

    /// A stale histogram's per-key counts and covered-row count, for
    /// copy-on-write refresh against an append-only provider.
    pub(crate) fn stale_histogram(
        &self,
        key: &StatsKey,
    ) -> Option<(usize, Arc<HashMap<Value, usize>>)> {
        let stats = read_lock(&self.stats);
        stats
            .get(key)
            .map(|entry| (entry.scanned, Arc::clone(&entry.counts)))
    }

    pub(crate) fn store_histogram(
        &self,
        key: StatsKey,
        version: u64,
        histogram: KeyHistogram,
        scanned: usize,
        counts: Arc<HashMap<Value, usize>>,
        refreshed: bool,
    ) {
        if refreshed {
            self.histogram_refreshes
                .fetch_add(1, AtomicOrdering::Relaxed);
        }
        let weight = counts.len() as u64 * 56 + 96;
        write_lock(&self.stats).insert_weighted(
            key,
            StatsEntry {
                version,
                histogram,
                scanned,
                counts,
            },
            weight,
        );
    }
}
