//! A small bounded map with least-recently-used eviction.
//!
//! Both long-lived query-engine memos — the [`crate::PlanCache`] and the shared
//! extent memo a dataspace keeps across queries — used to grow without bound.
//! [`LruMap`] is the shared primitive that bounds them: a `HashMap` whose entries
//! carry a last-used tick, evicting the stalest entry whenever an insert would
//! exceed the configured capacity.
//!
//! Two deliberate design points for the concurrent read path:
//!
//! * [`LruMap::get`] takes `&self` — the recency touch is an atomic store, so a
//!   map shared behind an `RwLock` serves concurrent hits under the *read* lock.
//!   Only inserts and clears need the write lock. Batched queries hammering a
//!   warm memo from many threads therefore never serialise on bookkeeping.
//! * Eviction scans for the minimum tick, which is `O(len)` per overflowing
//!   insert. Capacities here are in the hundreds-to-thousands and inserts are
//!   planner-level (not per-row) events, so the scan is cheaper than the
//!   linked-list bookkeeping (and unsafe code) of a classic LRU.
//!
//! Entries may also carry a *weight* (an estimated byte footprint): besides the
//! entry-count capacity, a map built with [`LruMap::with_weight_budget`] evicts
//! until the total weight fits its budget. Two cached plans are rarely the same
//! size — one may pin a few hundred materialised rows, another a multi-thousand
//! row join index — so counting entries alone would let a handful of heavy
//! plans dwarf the nominal bound. [`LruMap::insert`] assigns weight 1, keeping
//! count-bounded users (parse memo, extent memo) unchanged.
//!
//! ```
//! use iql::lru::LruMap;
//!
//! let mut cache: LruMap<&str, i32> = LruMap::new(2);
//! cache.insert("a", 1);
//! cache.insert("b", 2);
//! cache.get(&"a");          // refresh "a": "b" is now the LRU entry
//! cache.insert("c", 3);     // evicts "b"
//! assert!(cache.get(&"b").is_none());
//! assert_eq!(cache.len(), 2);
//! assert_eq!(cache.evictions(), 1);
//!
//! // A byte-budgeted map evicts by total weight, not entry count alone.
//! let mut sized: LruMap<&str, Vec<u8>> = LruMap::with_weight_budget(16, 100);
//! sized.insert_weighted("small", vec![0; 10], 10);
//! sized.insert_weighted("big", vec![0; 95], 95);   // 10 + 95 > 100: "small" goes
//! assert!(sized.get(&"small").is_none());
//! assert_eq!(sized.total_weight(), 95);
//! ```

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

/// A hash map bounded to `capacity` entries, evicting the least recently used
/// entry on overflow. `get` counts as a use; `insert` of an existing key
/// refreshes it in place.
#[derive(Debug)]
pub struct LruMap<K, V> {
    entries: HashMap<K, Slot<V>>,
    capacity: usize,
    weight_budget: u64,
    total_weight: u64,
    tick: AtomicU64,
    evictions: u64,
}

#[derive(Debug)]
struct Slot<V> {
    value: V,
    weight: u64,
    last_used: AtomicU64,
}

impl<K: Eq + Hash + Clone, V> LruMap<K, V> {
    /// An empty map holding at most `capacity` entries. A capacity of zero is
    /// clamped to one (a cache that can hold nothing would evict every insert).
    pub fn new(capacity: usize) -> Self {
        LruMap::with_weight_budget(capacity, u64::MAX)
    }

    /// An empty map bounded both by entry count and by total entry weight.
    /// Weights are supplied per entry through [`LruMap::insert_weighted`]
    /// (typically an estimated byte footprint); inserts evict stalest-first
    /// until both bounds hold. A single entry heavier than the whole budget is
    /// still admitted — alone — mirroring the capacity clamp.
    pub fn with_weight_budget(capacity: usize, weight_budget: u64) -> Self {
        LruMap {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            weight_budget: weight_budget.max(1),
            total_weight: 0,
            tick: AtomicU64::new(0),
            evictions: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured total-weight budget (`u64::MAX` when count-bounded only).
    pub fn weight_budget(&self) -> u64 {
        self.weight_budget
    }

    /// The summed weight of all held entries.
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many entries have been evicted for capacity so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Look up a key, marking the entry as most recently used on a hit. Takes
    /// `&self`: the touch is an atomic store, so concurrent readers sharing the
    /// map through an `RwLock` read guard never contend.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        self.entries.get(key).map(|slot| {
            slot.last_used.store(tick, Ordering::Relaxed);
            &slot.value
        })
    }

    /// Insert (or refresh) an entry with weight 1, evicting the least recently
    /// used one first when the map is full and the key is new.
    pub fn insert(&mut self, key: K, value: V) {
        self.insert_weighted(key, value, 1);
    }

    /// Insert (or refresh) an entry carrying an explicit weight, evicting
    /// stalest-first until both the entry-count capacity and the total-weight
    /// budget hold. Refreshing an existing key replaces its weight; it only
    /// evicts others if the new weight overflows the budget.
    pub fn insert_weighted(&mut self, key: K, value: V, weight: u64) {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(old) = self.entries.remove(&key) {
            // Re-insert under a new weight: retire the old weight *before* the
            // eviction loop below, so the budget check sees neither a phantom
            // copy of this key nor a double-counted weight.
            self.total_weight = self.release_weight(old.weight);
        }
        while !self.entries.is_empty()
            && (self.entries.len() >= self.capacity
                || self.total_weight.saturating_add(weight) > self.weight_budget)
        {
            if let Some(stalest) = self
                .entries
                .iter()
                .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
            {
                if let Some(evicted) = self.entries.remove(&stalest) {
                    self.total_weight = self.release_weight(evicted.weight);
                }
                self.evictions += 1;
            }
        }
        self.total_weight += weight;
        self.entries.insert(
            key,
            Slot {
                value,
                weight,
                last_used: AtomicU64::new(tick),
            },
        );
    }

    /// Remove every entry (the eviction counter is retained).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.total_weight = 0;
    }

    /// `total_weight` minus a removed entry's weight, guarded against
    /// underflow: the sum of held weights can never exceed `total_weight`, so
    /// a would-be wrap is a bookkeeping bug — loud in debug builds, clamped to
    /// zero (instead of wrapping to ~`u64::MAX`, which would pin the budget
    /// check at "over" and evict the whole map) in release builds.
    fn release_weight(&self, removed: u64) -> u64 {
        debug_assert!(
            removed <= self.total_weight,
            "LRU weight accounting underflow: releasing {removed} of {}",
            self.total_weight
        );
        self.total_weight.saturating_sub(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut m: LruMap<i32, i32> = LruMap::new(2);
        m.insert(1, 10);
        m.insert(2, 20);
        assert_eq!(m.get(&1), Some(&10)); // 2 is now stalest
        m.insert(3, 30);
        assert_eq!(m.get(&2), None);
        assert_eq!(m.get(&1), Some(&10));
        assert_eq!(m.get(&3), Some(&30));
        assert_eq!(m.evictions(), 1);
    }

    #[test]
    fn refreshing_an_existing_key_does_not_evict() {
        let mut m: LruMap<i32, i32> = LruMap::new(2);
        m.insert(1, 10);
        m.insert(2, 20);
        m.insert(1, 11); // refresh in place: still 2 entries, no eviction
        assert_eq!(m.len(), 2);
        assert_eq!(m.evictions(), 0);
        assert_eq!(m.get(&1), Some(&11));
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut m: LruMap<i32, i32> = LruMap::new(3);
        for i in 0..50 {
            m.insert(i, i);
            assert!(m.len() <= 3);
        }
        assert_eq!(m.evictions(), 47);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut m: LruMap<i32, i32> = LruMap::new(0);
        m.insert(1, 10);
        assert_eq!(m.get(&1), Some(&10));
        assert_eq!(m.capacity(), 1);
    }

    #[test]
    fn clear_empties_the_map() {
        let mut m: LruMap<i32, i32> = LruMap::new(4);
        for i in 0..4 {
            m.insert(i, i * 10);
        }
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn weight_budget_evicts_until_total_fits() {
        let mut m: LruMap<i32, i32> = LruMap::with_weight_budget(16, 100);
        m.insert_weighted(1, 10, 40);
        m.insert_weighted(2, 20, 40);
        m.get(&1); // 2 is now stalest
        m.insert_weighted(3, 30, 50); // 40+40+50 > 100: evict 2
        assert_eq!(m.get(&2), None);
        assert_eq!(m.get(&1), Some(&10));
        assert_eq!(m.total_weight(), 90);
        assert_eq!(m.evictions(), 1);
    }

    #[test]
    fn oversized_entry_is_admitted_alone() {
        let mut m: LruMap<i32, i32> = LruMap::with_weight_budget(16, 100);
        m.insert_weighted(1, 10, 30);
        m.insert_weighted(2, 20, 500); // heavier than the whole budget
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&2), Some(&20));
        assert_eq!(m.total_weight(), 500);
    }

    #[test]
    fn refresh_replaces_weight_in_place() {
        let mut m: LruMap<i32, i32> = LruMap::with_weight_budget(16, 100);
        m.insert_weighted(1, 10, 60);
        m.insert_weighted(2, 20, 30);
        m.insert_weighted(1, 11, 20); // refresh: 60 -> 20, no eviction needed
        assert_eq!(m.len(), 2);
        assert_eq!(m.total_weight(), 50);
        assert_eq!(m.evictions(), 0);
        assert_eq!(m.get(&1), Some(&11));
    }

    #[test]
    fn replace_heavier_subtracts_the_old_weight_first() {
        let mut m: LruMap<i32, i32> = LruMap::with_weight_budget(16, 100);
        m.insert_weighted(1, 10, 40);
        m.insert_weighted(2, 20, 30);
        // Re-insert key 1 at 60: accounting must be 30 + 60 = 90, NOT
        // 40 + 30 + 60 (double-counting the replaced entry would evict 2).
        m.insert_weighted(1, 11, 60);
        assert_eq!(m.total_weight(), 90);
        assert_eq!(m.len(), 2);
        assert_eq!(m.evictions(), 0, "old weight retired before budget check");
        assert_eq!(m.get(&2), Some(&20));
        assert_eq!(m.get(&1), Some(&11));
    }

    #[test]
    fn replace_lighter_frees_budget_for_later_inserts() {
        let mut m: LruMap<i32, i32> = LruMap::with_weight_budget(16, 100);
        m.insert_weighted(1, 10, 80);
        m.insert_weighted(1, 11, 10); // 80 -> 10: 70 units come free
        assert_eq!(m.total_weight(), 10);
        m.insert_weighted(2, 20, 85); // fits exactly because the 80 was retired
        assert_eq!(m.len(), 2);
        assert_eq!(m.total_weight(), 95);
        assert_eq!(m.evictions(), 0);
    }

    #[test]
    fn evict_after_replace_keeps_total_weight_exact() {
        let mut m: LruMap<i32, i32> = LruMap::with_weight_budget(16, 100);
        m.insert_weighted(1, 10, 30);
        m.insert_weighted(2, 20, 30);
        m.insert_weighted(1, 11, 50); // replace-heavier: total now 80
        m.get(&1); // 2 is stalest
        m.insert_weighted(3, 30, 40); // 80 + 40 > 100: evict 2 (its 30, once)
        assert_eq!(m.get(&2), None);
        assert_eq!(m.evictions(), 1);
        assert_eq!(
            m.total_weight(),
            90,
            "50 + 40 after 2's 30 left exactly once"
        );
        // No underflow residue: draining the map returns the ledger to zero.
        m.insert_weighted(4, 40, 100); // evicts 1 and 3
        assert_eq!(m.len(), 1);
        assert_eq!(m.total_weight(), 100);
        m.clear();
        assert_eq!(m.total_weight(), 0);
    }

    #[test]
    fn clear_resets_total_weight() {
        let mut m: LruMap<i32, i32> = LruMap::with_weight_budget(4, 100);
        m.insert_weighted(1, 10, 50);
        m.clear();
        assert_eq!(m.total_weight(), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn unweighted_inserts_count_one_each() {
        let mut m: LruMap<i32, i32> = LruMap::new(3);
        m.insert(1, 10);
        m.insert(2, 20);
        assert_eq!(m.total_weight(), 2);
        assert_eq!(m.weight_budget(), u64::MAX);
    }

    #[test]
    fn concurrent_reads_share_the_map_and_keep_recency() {
        let mut m: LruMap<i32, i32> = LruMap::new(2);
        m.insert(1, 10);
        m.insert(2, 20);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        assert_eq!(m.get(&1), Some(&10)); // &self: shared reads
                    }
                });
            }
        });
        m.insert(3, 30); // 2 was never touched by the readers: it goes
        assert_eq!(m.get(&2), None);
        assert_eq!(m.get(&1), Some(&10));
    }
}
