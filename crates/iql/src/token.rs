//! Tokens of the IQL surface syntax.

use std::fmt;

/// A lexical token together with its kind-specific payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier (variable, function name, or scheme part).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (already unescaped).
    Str(String),
    /// Named query-parameter placeholder `?name`.
    Param(String),
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `<<`
    SchemeOpen,
    /// `>>`
    SchemeClose,
    /// `|`
    Pipe,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `<-`
    Arrow,
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `_`
    Underscore,
    /// Keyword `and`
    And,
    /// Keyword `or`
    Or,
    /// Keyword `not`
    Not,
    /// Keyword `if`
    If,
    /// Keyword `then`
    Then,
    /// Keyword `else`
    Else,
    /// Keyword `let`
    Let,
    /// Keyword `in`
    In,
    /// Keyword `true`
    True,
    /// Keyword `false`
    False,
    /// Keyword `null`
    Null,
    /// Keyword `Range`
    Range,
    /// Keyword `Void`
    Void,
    /// Keyword `Any`
    Any,
    /// End of input.
    Eof,
}

impl Token {
    /// Classify an identifier as a keyword token if it is one.
    pub fn keyword(ident: &str) -> Option<Token> {
        Some(match ident {
            "and" => Token::And,
            "or" => Token::Or,
            "not" => Token::Not,
            "if" => Token::If,
            "then" => Token::Then,
            "else" => Token::Else,
            "let" => Token::Let,
            "in" => Token::In,
            "true" => Token::True,
            "false" => Token::False,
            "null" => Token::Null,
            "Range" => Token::Range,
            "Void" => Token::Void,
            "Any" => Token::Any,
            _ => return None,
        })
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Param(s) => write!(f, "?{s}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::SchemeOpen => write!(f, "<<"),
            Token::SchemeClose => write!(f, ">>"),
            Token::Pipe => write!(f, "|"),
            Token::Semi => write!(f, ";"),
            Token::Comma => write!(f, ","),
            Token::Arrow => write!(f, "<-"),
            Token::Eq => write!(f, "="),
            Token::Neq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::PlusPlus => write!(f, "++"),
            Token::MinusMinus => write!(f, "--"),
            Token::Underscore => write!(f, "_"),
            Token::And => write!(f, "and"),
            Token::Or => write!(f, "or"),
            Token::Not => write!(f, "not"),
            Token::If => write!(f, "if"),
            Token::Then => write!(f, "then"),
            Token::Else => write!(f, "else"),
            Token::Let => write!(f, "let"),
            Token::In => write!(f, "in"),
            Token::True => write!(f, "true"),
            Token::False => write!(f, "false"),
            Token::Null => write!(f, "null"),
            Token::Range => write!(f, "Range"),
            Token::Void => write!(f, "Void"),
            Token::Any => write!(f, "Any"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token paired with the byte offset at which it starts.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset of the first character of the token in the source string.
    pub offset: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_recognised() {
        assert_eq!(Token::keyword("Range"), Some(Token::Range));
        assert_eq!(Token::keyword("Void"), Some(Token::Void));
        assert_eq!(Token::keyword("protein"), None);
    }

    #[test]
    fn display_round_trip_for_symbols() {
        assert_eq!(Token::Arrow.to_string(), "<-");
        assert_eq!(Token::SchemeOpen.to_string(), "<<");
        assert_eq!(Token::PlusPlus.to_string(), "++");
    }
}
