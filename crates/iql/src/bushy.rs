//! Bushy join enumeration: a DPsize/DPccp-style dynamic program over the
//! connected subgraphs of a comprehension's join graph.
//!
//! The planner's greedy chain reorder (see [`crate::eval`]) always grows one
//! intermediate result left-deep, picking the smallest *extent* next. That rule
//! is blind to selectivity: on a star schema whose hub joins one satellite on a
//! low-distinct key and another on a near-unique key, joining the small but
//! unselective satellite first materialises a huge intermediate that the
//! selective join then has to grind down. The enumerator here searches **every
//! join-tree shape** — bushy trees included — and scores each with a cost model
//! over the same per-extent key histograms the greedy planner consults, so the
//! selective join runs first regardless of extent sizes, and independent
//! subchains may be joined separately before being combined.
//!
//! # Algorithm
//!
//! Classic DPsize over subset bitmasks, restricted to *connected* subproblems
//! (the DPccp refinement that never enumerates cross products):
//!
//! 1. `est[S]` — the estimated output cardinality of joining the relation set
//!    `S`: the product of member cardinalities times the selectivity of every
//!    join edge internal to `S`. Edge selectivity is `1 / max(distinct keys on
//!    either side)`, the textbook equi-join estimate, with the distinct counts
//!    drawn from the persisted histograms.
//! 2. `best[S]` — the cheapest tree for `S`, minimised over every partition
//!    `S = L ⊎ R` where both halves have a plan and at least one join edge
//!    crosses the cut. The cost of a join node is
//!    `cost(L) + cost(R) + min(est(L), est(R)) + est(S)` — the build side of
//!    the hash join (the smaller input) plus the materialised output, summed
//!    over the whole tree (a `C_out`-style model with an explicit build term).
//!
//! Subsets are enumerated in increasing mask order (every proper subset
//! precedes its superset) and partitions via the standard sub-mask walk, so the
//! program is exhaustive and deterministic: ties keep the first partition
//! found. With at most [`MAX_DP_RELATIONS`] relations the table has ≤ 64
//! entries — enumeration costs microseconds, far below one hash-join build.
//! Longer chains fall back to the greedy reorder (see
//! [`crate::eval::Evaluator`]).
//!
//! The module is pure planning: it sees only cardinalities and selectivities
//! and returns a [`JoinTree`]; the evaluator executes the tree with recursive
//! hash joins and restores nested-loop output order with one positional sort.

use std::fmt;

/// The largest relation count enumerated exhaustively. `2^6 = 64` subset table
/// entries; beyond this the planner's greedy chain reorder takes over (DP cost
/// grows as `3^n` partitions, and chains that long are rare in practice).
pub const MAX_DP_RELATIONS: usize = 6;

/// Ceiling for subset cardinality estimates. A cost is a sum of at most
/// `2 · (MAX_DP_RELATIONS - 1)` build/output terms, so clamping each term here
/// keeps every cost finite and the DP's `<` comparisons totally ordered.
const EST_CEILING: f64 = 1e300;

/// The shape of a planned join over a generator chain, reported through
/// [`crate::JoinStrategy::Bushy`]. Leaves are chain positions in **textual
/// generator order** (0 = the leading generator); internal nodes join the
/// results of their two subtrees with a hash join on every equi-predicate that
/// crosses the cut.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum JoinTree {
    /// One generator of the chain, by textual position.
    Leaf(usize),
    /// Hash-join the results of two subtrees.
    Join {
        /// Left input subtree.
        left: Box<JoinTree>,
        /// Right input subtree.
        right: Box<JoinTree>,
    },
}

impl JoinTree {
    /// The chain positions covered by this subtree, in ascending order.
    pub fn leaves(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out.sort_unstable();
        out
    }

    fn collect_leaves(&self, out: &mut Vec<usize>) {
        match self {
            JoinTree::Leaf(g) => out.push(*g),
            JoinTree::Join { left, right } => {
                left.collect_leaves(out);
                right.collect_leaves(out);
            }
        }
    }

    /// Bitmask of the chain positions covered by this subtree.
    pub(crate) fn leaf_mask(&self) -> u64 {
        match self {
            JoinTree::Leaf(g) => 1u64 << g,
            JoinTree::Join { left, right } => left.leaf_mask() | right.leaf_mask(),
        }
    }

    /// Number of join (internal) nodes in the tree.
    pub fn join_count(&self) -> usize {
        match self {
            JoinTree::Leaf(_) => 0,
            JoinTree::Join { left, right } => 1 + left.join_count() + right.join_count(),
        }
    }

    /// Whether the tree is *linear*: every join has at least one
    /// single-relation input, i.e. the tree is a left- or right-deep chain.
    /// The greedy chain reorder can only produce linear orders; a `false`
    /// here means the enumerator found a genuinely bushy shape (two
    /// multi-relation subtrees joined together).
    pub fn is_linear(&self) -> bool {
        match self {
            JoinTree::Leaf(_) => true,
            JoinTree::Join { left, right } => match (&**left, &**right) {
                (JoinTree::Leaf(_), t) | (t, JoinTree::Leaf(_)) => t.is_linear(),
                _ => false,
            },
        }
    }
}

impl fmt::Display for JoinTree {
    /// Render as e.g. `((2 ⋈ 1) ⋈ (0 ⋈ 3))`, leaves being textual positions.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinTree::Leaf(g) => write!(f, "{g}"),
            JoinTree::Join { left, right } => write!(f, "({left} ⋈ {right})"),
        }
    }
}

/// One equi-join edge of the chain's join graph, with its estimated
/// selectivity (`1 / max(distinct keys on either endpoint)`). Multiple
/// predicates between the same pair of relations contribute one `EdgeSel`
/// each; their selectivities multiply (independence assumption).
#[derive(Debug, Clone, Copy)]
pub(crate) struct EdgeSel {
    /// Chain position of one endpoint.
    pub a: usize,
    /// Chain position of the other endpoint.
    pub b: usize,
    /// Estimated fraction of the cross product the predicate keeps.
    pub selectivity: f64,
}

/// The enumerator's verdict: the cheapest tree, its estimated output
/// cardinality, and the total model cost (build sides + intermediates).
#[derive(Debug, Clone)]
pub(crate) struct Enumerated {
    /// The chosen join tree.
    pub tree: JoinTree,
    /// Estimated root output cardinality (used by tests; the caller
    /// thresholds `max_intermediate`, which includes the root).
    #[allow(dead_code)]
    pub est_rows: f64,
    /// Largest estimated output over **every** join node of the chosen tree
    /// (root included) — the caller's bail-out threshold, so a plan is
    /// rejected if *any* intermediate it must materialise looks explosive,
    /// not just its final output.
    pub max_intermediate: f64,
    /// Total cost under the model (used by tests).
    #[allow(dead_code)]
    pub cost: f64,
}

/// Exhaustively enumerate join trees over `cards.len()` relations connected by
/// `edges`, returning the cheapest. `None` when the join graph is disconnected
/// (some cut has no edge, so any complete tree would cross-product), when
/// there are fewer than two relations, or when the relation count exceeds
/// [`MAX_DP_RELATIONS`].
pub(crate) fn enumerate(cards: &[usize], edges: &[EdgeSel]) -> Option<Enumerated> {
    let n = cards.len();
    if !(2..=MAX_DP_RELATIONS).contains(&n) {
        return None;
    }
    let full: u64 = (1u64 << n) - 1;

    // Pairwise combined selectivity and adjacency. Selectivities are sanitised
    // to the meaningful `(0, 1]` range: histogram estimates are `1/distinct`
    // and observed-feedback ratios are fractions of a cross product, so a NaN,
    // infinite, negative or > 1 value can only come from degenerate feedback
    // (e.g. a ratio over a zero estimate) and is treated as "keeps everything".
    let mut sel = vec![vec![1.0f64; n]; n];
    let mut adj = vec![vec![false; n]; n];
    for e in edges {
        if e.a >= n || e.b >= n || e.a == e.b {
            continue;
        }
        let s = if e.selectivity.is_finite() && e.selectivity >= 0.0 {
            e.selectivity.min(1.0)
        } else {
            1.0
        };
        sel[e.a][e.b] *= s;
        sel[e.b][e.a] *= s;
        adj[e.a][e.b] = true;
        adj[e.b][e.a] = true;
    }

    // est[S]: cardinality estimate for the subset `S`, built incrementally by
    // peeling the lowest relation off — its internal edges to the rest of `S`
    // contribute their selectivities exactly once.
    let mut est = vec![0.0f64; (full + 1) as usize];
    for s in 1..=full {
        let low = s.trailing_zeros() as usize;
        let rest = s & (s - 1);
        if rest == 0 {
            est[s as usize] = cards[low] as f64;
            continue;
        }
        let mut e = est[rest as usize] * cards[low] as f64;
        for (other, s_low) in sel[low].iter().enumerate() {
            if rest & (1 << other) != 0 {
                e *= s_low;
            }
        }
        // Clamp to a finite ceiling: huge cardinality products overflow `f64`
        // to ∞, and an infinite estimate poisons every cost that includes it
        // (`cost < ∞` never orders candidates). The ceiling is large enough
        // that sums over a ≤ MAX_DP_RELATIONS tree stay finite.
        est[s as usize] = e.min(EST_CEILING);
    }

    let crosses = |l: u64, r: u64| -> bool {
        adj.iter().enumerate().any(|(a, row)| {
            l & (1 << a) != 0
                && row
                    .iter()
                    .enumerate()
                    .any(|(b, &edge)| r & (1 << b) != 0 && edge)
        })
    };

    // best[S]: (cost, split) — split == 0 marks a leaf.
    let mut best: Vec<Option<(f64, u64)>> = vec![None; (full + 1) as usize];
    for g in 0..n {
        best[1usize << g] = Some((0.0, 0));
    }
    for s in 1..=full {
        if (s & (s - 1)) == 0 {
            continue; // singleton, already seeded
        }
        let mut chosen: Option<(f64, u64)> = None;
        // Walk every proper nonempty sub-mask; taking only halves that contain
        // the lowest bit visits each unordered partition once.
        let lowbit = s & s.wrapping_neg();
        let mut l = (s - 1) & s;
        while l != 0 {
            let r = s ^ l;
            if l & lowbit != 0 {
                if let (Some((cl, _)), Some((cr, _))) = (best[l as usize], best[r as usize]) {
                    if crosses(l, r) {
                        let build = est[l as usize].min(est[r as usize]);
                        let cost = cl + cr + build + est[s as usize];
                        // A non-finite cost must never be *held*: `cost < NaN`
                        // and `cost < ∞` comparisons would let an arbitrary
                        // first candidate survive against every cheaper one.
                        if cost.is_finite() && chosen.is_none_or(|(c, _)| cost < c) {
                            chosen = Some((cost, l));
                        }
                    }
                }
            }
            l = (l - 1) & s;
        }
        best[s as usize] = chosen;
    }

    let (cost, _) = best[full as usize]?;
    let tree = rebuild(full, &best);
    let max_intermediate = max_join_estimate(&tree, &est);
    Some(Enumerated {
        tree,
        est_rows: est[full as usize],
        max_intermediate,
        cost,
    })
}

/// The largest subset estimate over the tree's join (internal) nodes.
fn max_join_estimate(tree: &JoinTree, est: &[f64]) -> f64 {
    match tree {
        JoinTree::Leaf(_) => 0.0,
        JoinTree::Join { left, right } => est[tree.leaf_mask() as usize]
            .max(max_join_estimate(left, est))
            .max(max_join_estimate(right, est)),
    }
}

/// Reconstruct the tree for `mask` from the recorded splits. The half holding
/// the lowest set bit becomes the left child (a deterministic orientation; the
/// executor hashes whichever side is smaller at run time regardless).
fn rebuild(mask: u64, best: &[Option<(f64, u64)>]) -> JoinTree {
    let (_, split) = best[mask as usize].expect("rebuild only visits planned subsets");
    if split == 0 {
        return JoinTree::Leaf(mask.trailing_zeros() as usize);
    }
    JoinTree::Join {
        left: Box::new(rebuild(split, best)),
        right: Box::new(rebuild(mask ^ split, best)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(a: usize, b: usize, selectivity: f64) -> EdgeSel {
        EdgeSel { a, b, selectivity }
    }

    #[test]
    fn chain_of_three_orders_by_cost_not_size() {
        // big(120) — mid(30) — small(3), all keys 1/6 selective: joining
        // small with mid first (15 rows) beats starting from big.
        let out = enumerate(
            &[120, 30, 3],
            &[edge(0, 1, 1.0 / 6.0), edge(1, 2, 1.0 / 6.0)],
        )
        .expect("connected");
        assert_eq!(out.tree.leaves(), vec![0, 1, 2]);
        assert!((out.est_rows - 300.0).abs() < 1e-9);
        // The chosen tree joins {mid, small} before touching big.
        let JoinTree::Join { left, right } = &out.tree else {
            panic!("expected a join at the root");
        };
        let inner = if matches!(**left, JoinTree::Join { .. }) {
            left
        } else {
            right
        };
        assert_eq!(inner.leaves(), vec![1, 2]);
    }

    #[test]
    fn four_chain_prefers_genuinely_bushy_tree() {
        // A(100)-B(4)-C(4)-D(100): the outer edges are selective but the middle
        // edge keeps everything, so growing one intermediate through the middle
        // (any linear order, cost 60) loses to joining the two selective ends
        // separately and combining them last: (A⋈B) ⋈ (C⋈D) costs 36.
        let out = enumerate(
            &[100, 4, 4, 100],
            &[edge(0, 1, 0.01), edge(1, 2, 1.0), edge(2, 3, 0.01)],
        )
        .expect("connected");
        assert!(
            !out.tree.is_linear(),
            "expected a bushy tree, got {}",
            out.tree
        );
        let JoinTree::Join { left, right } = &out.tree else {
            panic!("expected a join at the root");
        };
        assert_eq!(left.leaves(), vec![0, 1]);
        assert_eq!(right.leaves(), vec![2, 3]);
        assert!(
            (out.cost - 36.0).abs() < 1e-9,
            "cost model drifted: {out:?}"
        );
    }

    #[test]
    fn star_graphs_admit_only_left_deep_trees() {
        // hub(0) joined to three satellites: every connected subset of size ≥ 2
        // contains the hub, so no bushy partition exists.
        let out = enumerate(
            &[50, 10, 10, 10],
            &[edge(0, 1, 0.1), edge(0, 2, 0.1), edge(0, 3, 0.1)],
        )
        .expect("connected");
        assert!(out.tree.is_linear());
        assert_eq!(out.tree.join_count(), 3);
    }

    #[test]
    fn disconnected_graph_is_refused() {
        assert!(enumerate(&[5, 5, 5], &[edge(0, 1, 0.5)]).is_none());
        assert!(enumerate(&[5, 5], &[]).is_none());
    }

    #[test]
    fn size_limits_are_enforced() {
        assert!(enumerate(&[5], &[]).is_none());
        let cards = vec![5usize; MAX_DP_RELATIONS + 1];
        let edges: Vec<EdgeSel> = (1..cards.len()).map(|i| edge(i - 1, i, 0.5)).collect();
        assert!(enumerate(&cards, &edges).is_none());
    }

    #[test]
    fn max_intermediate_covers_every_join_node() {
        // Unselective 0-1 edge, selective 1-2 edge: the winner joins {1, 2}
        // first (est 1), then 0 (root est 20) — max_intermediate is the
        // worst node of the *chosen* tree, here the root, not the 400-row
        // intermediate the rejected left-deep order would have built.
        let out =
            enumerate(&[20, 20, 3], &[edge(0, 1, 1.0), edge(1, 2, 1.0 / 60.0)]).expect("connected");
        let JoinTree::Join { left, right } = &out.tree else {
            panic!("expected a join at the root");
        };
        let inner = if matches!(**left, JoinTree::Join { .. }) {
            left
        } else {
            right
        };
        assert_eq!(inner.leaves(), vec![1, 2], "selective pair joins first");
        assert!((out.est_rows - 20.0).abs() < 1e-9);
        assert!((out.max_intermediate - 20.0).abs() < 1e-9);
    }

    #[test]
    fn multiple_predicates_between_a_pair_multiply() {
        // Two edges between the same pair: est = 10*10*0.1*0.1 = 1.
        let out = enumerate(&[10, 10], &[edge(0, 1, 0.1), edge(0, 1, 0.1)]).expect("connected");
        assert!((out.est_rows - 1.0).abs() < 1e-9);
        assert_eq!(out.tree.join_count(), 1);
    }

    #[test]
    fn overflowing_cardinalities_still_pick_the_cheapest_tree() {
        // Cardinalities near usize::MAX: the {0,1} product alone is ~3e38, and
        // before estimates were clamped a poisoned (∞) first candidate was
        // never displaced — `cost < ∞` is false only for other infinities, and
        // `cost < NaN` is false for everything — so the DP kept the arbitrary
        // first partition, which builds the catastrophic {0,1} pair first.
        let out = enumerate(
            &[usize::MAX, usize::MAX, 3],
            &[edge(0, 1, 1.0), edge(1, 2, 1e-18)],
        )
        .expect("connected");
        assert!(
            out.cost.is_finite(),
            "clamped costs must be finite: {out:?}"
        );
        let JoinTree::Join { left, right } = &out.tree else {
            panic!("expected a join at the root");
        };
        let inner = if matches!(**left, JoinTree::Join { .. }) {
            left
        } else {
            right
        };
        assert_eq!(
            inner.leaves(),
            vec![1, 2],
            "the selective pair must join first, not the arbitrary first partition"
        );
    }

    #[test]
    fn non_finite_selectivities_are_neutralised() {
        // Degenerate feedback (a ratio over a zero estimate) can hand the
        // enumerator NaN or ∞ selectivities; they must not poison the DP or
        // leak into the cost. Structure as in `chain_of_three_orders_by_cost`:
        // with the bad edges neutralised to 1.0 the selective 1-2 edge still
        // decides the shape.
        for bad in [f64::INFINITY, f64::NAN, -3.0] {
            let out = enumerate(&[120, 30, 3], &[edge(0, 1, bad), edge(1, 2, 1.0 / 60.0)])
                .unwrap_or_else(|| panic!("connected (bad = {bad})"));
            assert!(out.cost.is_finite(), "bad = {bad}: {out:?}");
            let JoinTree::Join { left, right } = &out.tree else {
                panic!("expected a join at the root");
            };
            let inner = if matches!(**left, JoinTree::Join { .. }) {
                left
            } else {
                right
            };
            assert_eq!(inner.leaves(), vec![1, 2], "bad = {bad}");
        }
    }

    #[test]
    fn selectivities_above_one_are_clamped() {
        // Selectivity is a kept-fraction; > 1 can only be feedback noise. A
        // huge "selectivity" used to let est overflow to ∞ even for modest
        // cardinalities.
        let out = enumerate(&[10, 10], &[edge(0, 1, 1e200)]).expect("connected");
        assert!(out.cost.is_finite());
        assert!(
            (out.est_rows - 100.0).abs() < 1e-9,
            "clamped to 1.0: {out:?}"
        );
    }

    #[test]
    fn enumeration_is_deterministic() {
        let cards = [40, 7, 19, 23, 11];
        let edges = [
            edge(0, 1, 0.2),
            edge(1, 2, 0.05),
            edge(0, 3, 0.5),
            edge(3, 4, 0.125),
        ];
        let a = enumerate(&cards, &edges).expect("connected");
        let b = enumerate(&cards, &edges).expect("connected");
        assert_eq!(a.tree, b.tree);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn display_renders_positions() {
        let t = JoinTree::Join {
            left: Box::new(JoinTree::Join {
                left: Box::new(JoinTree::Leaf(2)),
                right: Box::new(JoinTree::Leaf(0)),
            }),
            right: Box::new(JoinTree::Leaf(1)),
        };
        assert_eq!(t.to_string(), "((2 ⋈ 0) ⋈ 1)");
        assert_eq!(t.leaves(), vec![0, 1, 2]);
        assert!(t.is_linear());
    }
}
