//! The IQL abstract syntax tree.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::{Hash, Hasher};

/// A reference to a schema object by its *scheme*, e.g. `⟨⟨protein, accession_num⟩⟩`.
///
/// Scheme parts follow the paper's abbreviated relational convention: a single part
/// names a table, two parts name a column of a table. Longer schemes (including an
/// explicit modelling-language prefix such as `sql`) are also representable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SchemeRef {
    /// The scheme elements, e.g. `["protein", "accession_num"]`.
    pub parts: Vec<String>,
}

impl SchemeRef {
    /// Build a scheme reference from its parts.
    pub fn new<I, S>(parts: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        SchemeRef {
            parts: parts.into_iter().map(Into::into).collect(),
        }
    }

    /// A scheme naming a table-like object.
    pub fn table(name: impl Into<String>) -> Self {
        SchemeRef::new([name.into()])
    }

    /// A scheme naming a column-like object.
    pub fn column(table: impl Into<String>, column: impl Into<String>) -> Self {
        SchemeRef::new([table.into(), column.into()])
    }

    /// A canonical string key for the scheme (comma-joined parts).
    pub fn key(&self) -> String {
        self.parts.join(",")
    }

    /// Build a new scheme with every part prefixed by `prefix_` (used when federating
    /// schemas to record provenance and disambiguate equal names).
    pub fn prefixed(&self, prefix: &str) -> SchemeRef {
        SchemeRef {
            parts: self.parts.iter().map(|p| format!("{prefix}_{p}")).collect(),
        }
    }
}

impl fmt::Display for SchemeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<<{}>>", self.parts.join(", "))
    }
}

/// Literal constants.
///
/// `Literal` (and therefore every AST type built from it) implements [`Eq`] and
/// [`Hash`] so expressions can key hash maps — most importantly the
/// [`crate::PlanCache`], whose lookups hash the expression instead of
/// pretty-printing it. Floats compare with IEEE equality (so
/// `Float(-0.0) == Float(0.0)`) except that `NaN` equals `NaN` — the surface
/// syntax cannot spell one, but programmatically built expressions can, and
/// cache keying relies on `Eq`'s reflexivity holding for every constructible
/// `Expr`. Hashing canonicalises every `NaN` to one bit pattern, consistently.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Literal {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String (single-quoted in the surface syntax).
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Null / absent value.
    Null,
}

impl PartialEq for Literal {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Literal::Int(a), Literal::Int(b)) => a == b,
            // IEEE equality except NaN == NaN, keeping Eq reflexive for
            // programmatically built expressions (consistent with Hash, which
            // canonicalises every NaN to one bit pattern).
            (Literal::Float(a), Literal::Float(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Literal::Str(a), Literal::Str(b)) => a == b,
            (Literal::Bool(a), Literal::Bool(b)) => a == b,
            (Literal::Null, Literal::Null) => true,
            _ => false,
        }
    }
}

impl Eq for Literal {}

impl Hash for Literal {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Literal::Int(i) => {
                state.write_u8(0);
                i.hash(state);
            }
            Literal::Float(f) => {
                state.write_u8(1);
                // `-0.0 == 0.0` under PartialEq, so both must hash
                // identically; any NaN canonicalises to one bit pattern.
                let bits = if *f == 0.0 {
                    0.0f64.to_bits()
                } else if f.is_nan() {
                    f64::NAN.to_bits()
                } else {
                    f.to_bits()
                };
                bits.hash(state);
            }
            Literal::Str(s) => {
                state.write_u8(2);
                s.hash(state);
            }
            Literal::Bool(b) => {
                state.write_u8(3);
                b.hash(state);
            }
            Literal::Null => state.write_u8(4),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(i) => write!(f, "{i}"),
            // A float with no fractional part must keep its decimal point, or the
            // printed form would reparse as an Int and break round-tripping.
            Literal::Float(x) if x.is_finite() && x.fract() == 0.0 => write!(f, "{x:.1}"),
            Literal::Float(x) => write!(f, "{x}"),
            // Escape backslashes before quotes, or a literal `\` would print as
            // the start of an escape sequence and break round-tripping.
            Literal::Str(s) => write!(f, "'{}'", s.replace('\\', "\\\\").replace('\'', "\\'")),
            Literal::Bool(b) => write!(f, "{b}"),
            Literal::Null => write!(f, "null"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Equality `=`.
    Eq,
    /// Inequality `<>`.
    Neq,
    /// Less-than `<`.
    Lt,
    /// Less-or-equal `<=`.
    Le,
    /// Greater-than `>`.
    Gt,
    /// Greater-or-equal `>=`.
    Ge,
    /// Addition `+`.
    Add,
    /// Subtraction `-`.
    Sub,
    /// Multiplication `*`.
    Mul,
    /// Division `/`.
    Div,
    /// Bag union `++`.
    BagUnion,
    /// Bag monus (difference) `--`.
    BagDiff,
    /// Logical conjunction `and`.
    And,
    /// Logical disjunction `or`.
    Or,
}

impl BinOp {
    /// Surface-syntax spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::Neq => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::BagUnion => "++",
            BinOp::BagDiff => "--",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }

    /// Binding strength; larger binds tighter.
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
            BinOp::BagUnion | BinOp::BagDiff => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div => 6,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Logical negation `not`.
    Not,
}

/// Patterns used on the left of generators and `let` bindings.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pattern {
    /// Bind the whole value to a variable.
    Var(String),
    /// Destructure a tuple; arity must match.
    Tuple(Vec<Pattern>),
    /// Match anything without binding (`_`).
    Wildcard,
    /// Match only values equal to the literal.
    Lit(Literal),
}

impl Pattern {
    /// The set of variables bound by this pattern, in left-to-right order.
    pub fn bound_vars(&self) -> Vec<&str> {
        match self {
            Pattern::Var(v) => vec![v.as_str()],
            Pattern::Tuple(ps) => ps.iter().flat_map(|p| p.bound_vars()).collect(),
            Pattern::Wildcard | Pattern::Lit(_) => Vec::new(),
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Var(v) => write!(f, "{v}"),
            Pattern::Tuple(ps) => {
                write!(f, "{{")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, "}}")
            }
            Pattern::Wildcard => write!(f, "_"),
            Pattern::Lit(l) => write!(f, "{l}"),
        }
    }
}

/// A qualifier on the right-hand side of a comprehension.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Qualifier {
    /// `pattern <- source`: iterate over the bag produced by `source`, binding the
    /// pattern for each element.
    Generator { pattern: Pattern, source: Expr },
    /// A boolean filter.
    Filter(Expr),
    /// `let pattern = expr`: bind without iterating.
    Binding { pattern: Pattern, value: Expr },
}

/// An IQL expression.
///
/// `Expr` implements [`Eq`] and [`Hash`] (see [`Literal`] for the float caveat),
/// which is what lets the [`crate::PlanCache`] key cached plans by the expression
/// itself instead of pretty-printing a string key on every lookup.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// A literal constant.
    Lit(Literal),
    /// A variable reference.
    Var(String),
    /// A named query parameter `?name`, bound to a concrete value only at
    /// execution time through an [`crate::env::Params`] map.
    ///
    /// Parameters are what make prepared queries plan-stable: a query shape
    /// like `x = ?accession` is one `Expr` (and therefore one
    /// [`crate::PlanCache`] key) no matter which accession is bound, where the
    /// literal-splicing equivalent `x = 'ACC1'` produces a distinct expression
    /// per value and replans every time. The planner treats parameters as
    /// opaque non-constants: they never participate in join-key fusion or the
    /// cost model, and any plan-time-evaluated source mentioning one is
    /// excluded from the plan cache (see [`crate::rewrite::collect_params`]).
    Param(String),
    /// A scheme reference `⟨⟨…⟩⟩`, whose value is the extent of the named schema object.
    Scheme(SchemeRef),
    /// A tuple constructor `{e1, …, en}`.
    Tuple(Vec<Expr>),
    /// A literal bag `[e1, …, en]` (empty `[]` is the empty bag).
    Bag(Vec<Expr>),
    /// A comprehension `[head | q1; …; qn]`.
    Comp {
        /// The element constructor.
        head: Box<Expr>,
        /// Generators, filters and bindings, evaluated left to right.
        qualifiers: Vec<Qualifier>,
    },
    /// Application of a named (built-in) function.
    Apply {
        /// Function name, e.g. `count`.
        function: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// A binary operation.
    BinOp {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A unary operation.
    UnOp {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `if cond then e1 else e2`.
    If {
        /// Condition (must evaluate to a boolean).
        cond: Box<Expr>,
        /// Value when true.
        then: Box<Expr>,
        /// Value when false.
        otherwise: Box<Expr>,
    },
    /// `let pattern = value in body`.
    Let {
        /// Pattern to bind.
        pattern: Pattern,
        /// Bound expression.
        value: Box<Expr>,
        /// Body in which the bindings are visible.
        body: Box<Expr>,
    },
    /// The `Void` constant — the empty collection (lower bound of unknown extents).
    Void,
    /// The `Any` constant — the unrestricted collection (upper bound of unknown extents).
    Any,
    /// `Range q_l q_u` — a pair of lower/upper bound queries, used by `extend` and
    /// `contract` transformations.
    Range {
        /// Lower-bound query.
        lower: Box<Expr>,
        /// Upper-bound query.
        upper: Box<Expr>,
    },
}

impl Expr {
    /// Shorthand for a string literal expression.
    pub fn str(s: impl Into<String>) -> Expr {
        Expr::Lit(Literal::Str(s.into()))
    }

    /// Shorthand for an integer literal expression.
    pub fn int(i: i64) -> Expr {
        Expr::Lit(Literal::Int(i))
    }

    /// Shorthand for a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Shorthand for a named query-parameter placeholder `?name`.
    pub fn param(name: impl Into<String>) -> Expr {
        Expr::Param(name.into())
    }

    /// The set of parameter names (`?name` placeholders) occurring anywhere in
    /// this expression, in sorted order.
    pub fn params(&self) -> std::collections::BTreeSet<String> {
        crate::rewrite::collect_params(self)
    }

    /// Shorthand for a scheme reference expression.
    pub fn scheme<I, S>(parts: I) -> Expr
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Expr::Scheme(SchemeRef::new(parts))
    }

    /// The canonical `Range Void Any` query used by `extend`/`contract` steps whose
    /// extent is not derivable from the rest of the schema.
    pub fn range_void_any() -> Expr {
        Expr::Range {
            lower: Box::new(Expr::Void),
            upper: Box::new(Expr::Any),
        }
    }

    /// Whether this expression is exactly `Range Void Any` (the paper's notion of a
    /// *trivial* transformation query, excluded from the effort counts).
    pub fn is_range_void_any(&self) -> bool {
        matches!(
            self,
            Expr::Range { lower, upper }
                if matches!(**lower, Expr::Void) && matches!(**upper, Expr::Any)
        )
    }

    /// Whether this expression contains any scheme reference at all.
    pub fn references_schemes(&self) -> bool {
        !crate::rewrite::collect_schemes(self).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_key_and_prefix() {
        let s = SchemeRef::column("protein", "accession_num");
        assert_eq!(s.key(), "protein,accession_num");
        assert_eq!(s.to_string(), "<<protein, accession_num>>");
        let p = s.prefixed("PEDRO");
        assert_eq!(p.parts, vec!["PEDRO_protein", "PEDRO_accession_num"]);
    }

    #[test]
    fn range_void_any_detection() {
        assert!(Expr::range_void_any().is_range_void_any());
        let not_trivial = Expr::Range {
            lower: Box::new(Expr::scheme(["protein"])),
            upper: Box::new(Expr::Any),
        };
        assert!(!not_trivial.is_range_void_any());
        assert!(!Expr::Void.is_range_void_any());
    }

    #[test]
    fn pattern_bound_vars() {
        let p = Pattern::Tuple(vec![
            Pattern::Var("k".into()),
            Pattern::Wildcard,
            Pattern::Tuple(vec![
                Pattern::Var("x".into()),
                Pattern::Lit(Literal::Int(1)),
            ]),
        ]);
        assert_eq!(p.bound_vars(), vec!["k", "x"]);
        assert_eq!(p.to_string(), "{k, _, {x, 1}}");
    }

    #[test]
    fn operator_precedence_ordering() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Eq.precedence());
        assert!(BinOp::Eq.precedence() > BinOp::And.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
    }
}
