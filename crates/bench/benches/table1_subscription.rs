//! Standing-subscription maintenance vs per-insert re-execution.
//!
//! A standing subscription promises O(delta) upkeep: when a row lands in the
//! extent its standing plan *leads* with, the engine drives just that row
//! through the retained plan instead of re-running the query. This bench
//! measures what that promise is worth, per insert, across a source-size
//! sweep:
//!
//! * **subscription**: one live subscription on a selection over the inserted
//!   table; each iteration is a single `Dataspace::insert`, whose cost
//!   *includes* keeping the subscription current through the delta path;
//! * **reexecute**: no subscription; each iteration is the same insert
//!   followed by a from-scratch execution of the same query — what a client
//!   without standing queries must do to keep a live result fresh;
//! * **insert_only**: the same insert with nothing to maintain — the floor
//!   both legs sit on.
//!
//! Expectation: `subscription` stays near the `insert_only` floor at every
//! scale (per-insert maintenance is near-constant in the extent size), while
//! `reexecute` grows linearly with the extent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dataspace_core::dataspace::Dataspace;
use iql::Params;
use relational::schema::{DataType, RelColumn, RelSchema, RelTable};
use relational::Database;
use std::cell::Cell;
use std::time::Duration;

const QUERY: &str = "[x | {k, x} <- <<SRC_t, SRC_label>>; k >= 0]";

fn populated(rows: i64) -> Dataspace {
    let mut schema = RelSchema::new("src");
    schema
        .add_table(
            RelTable::new("t")
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("label", DataType::Text))
                .with_primary_key(["id"]),
        )
        .expect("schema builds");
    let mut db = Database::new(schema);
    let batch: Vec<Vec<iql::Value>> = (0..rows)
        .map(|i| vec![i.into(), format!("w{}", i % 97).into()])
        .collect();
    db.insert_many("t", batch).expect("seed rows");
    let mut ds = Dataspace::new();
    ds.add_source(db).expect("add source");
    ds.federate().expect("federate");
    ds
}

fn table1_subscription(c: &mut Criterion) {
    // The harness shim takes no warmup samples, and the first benchmark in a
    // process otherwise absorbs the CPU's frequency ramp: spin the exact
    // workload for a second before measuring anything.
    let mut warm = populated(2_000);
    let deadline = std::time::Instant::now() + Duration::from_secs(1);
    let mut i = 2_000i64;
    while std::time::Instant::now() < deadline {
        warm.insert("src", "t", vec![i.into(), "w".into()])
            .expect("warmup insert");
        warm.query(QUERY).expect("warmup query");
        i += 1;
    }
    drop(warm);

    let mut group = c.benchmark_group("table1_subscription");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    for rows in [500i64, 2_000, 8_000] {
        // Subscription leg: the insert itself maintains the standing result.
        let mut ds = populated(rows);
        let sub = ds
            .prepare(QUERY)
            .expect("query prepares")
            .subscribe(&Params::new())
            .expect("query subscribes");
        assert!(sub.is_incremental(), "bench shape must take the delta path");
        let ticks = Cell::new(rows);
        group.bench_with_input(BenchmarkId::new("subscription", rows), &rows, |b, _| {
            b.iter(|| {
                let i = ticks.get();
                ticks.set(i + 1);
                ds.insert("src", "t", vec![i.into(), format!("w{}", i % 97).into()])
                    .expect("insert maintains");
            })
        });
        let stats = ds.stats();
        assert!(stats.delta_evals > 0 && stats.fallback_reexecs == 0);
        drop(sub);

        // Re-execution leg: insert, then run the query from scratch.
        let mut ds = populated(rows);
        let ticks = Cell::new(rows);
        group.bench_with_input(BenchmarkId::new("reexecute", rows), &rows, |b, _| {
            b.iter(|| {
                let i = ticks.get();
                ticks.set(i + 1);
                ds.insert("src", "t", vec![i.into(), format!("w{}", i % 97).into()])
                    .expect("insert");
                ds.query(QUERY).expect("reexecution answers")
            })
        });

        // Floor: the bare insert with nothing subscribed.
        let mut ds = populated(rows);
        let ticks = Cell::new(rows);
        group.bench_with_input(BenchmarkId::new("insert_only", rows), &rows, |b, _| {
            b.iter(|| {
                let i = ticks.get();
                ticks.set(i + 1);
                ds.insert("src", "t", vec![i.into(), format!("w{}", i % 97).into()])
                    .expect("insert");
            })
        });
    }
    group.finish();
}

criterion_group!(benches, table1_subscription);
criterion_main!(benches);
