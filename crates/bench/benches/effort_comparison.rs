//! E2 (§3 effort comparison): 26 manually-defined transformations (intersection
//! schemas, query-driven) versus 95 non-trivial transformations (classical iSpider
//! integration). Prints the comparison once and benchmarks the cost of constructing
//! each integration.

use criterion::{criterion_group, criterion_main, Criterion};
use proteomics::case_study::compare_methodologies;
use proteomics::classical_integration::run_classical_integration;
use proteomics::intersection_integration::all_iterations;
use proteomics::sources::CaseStudyScale;
use std::time::Duration;

fn effort_comparison(c: &mut Criterion) {
    let (run, classical, comparison) =
        compare_methodologies(&CaseStudyScale::tiny()).expect("case study runs");
    eprintln!("\n[E2] methodology comparison:");
    eprintln!("{}", comparison.render());
    eprintln!(
        "  intersection per-iteration manual counts: {:?}",
        run.per_iteration_manual
    );
    eprintln!(
        "  classical per-stage non-trivial counts:   {:?}",
        classical
            .stages
            .iter()
            .map(|s| s.nontrivial_total)
            .collect::<Vec<_>>()
    );

    let mut group = c.benchmark_group("effort_comparison");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("build_intersection_specs", |b| {
        b.iter(|| {
            let iterations = all_iterations().expect("specs");
            iterations
                .iter()
                .map(|(_, s)| s.manual_transformation_count())
                .sum::<usize>()
        })
    });
    group.bench_function("classical_integration_full", |b| {
        b.iter(|| {
            run_classical_integration()
                .expect("classical runs")
                .total_nontrivial
        })
    });
    group.finish();
}

criterion_group!(benches, effort_comparison);
criterion_main!(benches);
