//! Wire-protocol overhead on the Table 1 workload: the same prepared queries
//! executed in-process vs over a loopback TCP connection.
//!
//! Four legs on the integrated dataspace at the bench scale:
//!
//! * **q1_in_process**: `PreparedQuery::execute` directly — the floor the wire
//!   path is measured against;
//! * **q1_over_wire**: the same prepared execute through `wire::Client` on a
//!   loopback socket — adds frame encode/decode, one request/response round
//!   trip, and the server's session dispatch;
//! * **scan_streamed_over_wire**: a full accession scan pulled through the
//!   client-acked chunk stream (chunk 16), paying one round trip per chunk —
//!   the backpressure tax in its most visible form;
//! * **insert_to_push**: commit one row and block until the standing-query
//!   delta push arrives — the end-to-end write-to-notification latency of the
//!   subscription path over the wire.

use bench::{bench_scale, integrated_dataspace};
use criterion::{criterion_group, criterion_main, Criterion};
use iql::Value;
use proteomics::queries::{q1, Q1_IQL};
use std::cell::{Cell, RefCell};
use std::sync::{Arc, RwLock};
use std::time::Duration;

const ACCESSION_FEED: &str = "[x | {k, x} <- <<PEDRO_protein, PEDRO_accession_num>>]";
const ACCESSION_SCAN: &str = "[{k, x} | {k, x} <- <<PEDRO_protein, PEDRO_accession_num>>]";

fn table1_wire(c: &mut Criterion) {
    let ds = Arc::new(RwLock::new(integrated_dataspace(&bench_scale())));
    let handle = server::serve(
        Arc::clone(&ds),
        ("127.0.0.1", 0),
        server::ServerConfig::default(),
    )
    .expect("bind loopback server");
    let client = RefCell::new(wire::Client::connect(handle.local_addr()).expect("connect"));

    let mut group = c.benchmark_group("table1_wire");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));

    // Both Q1 legs advance one counter so neither sees a repeated binding.
    let ticks = Cell::new(0u64);
    {
        let ds = ds.read().unwrap();
        let prepared_q1 = ds.prepare(Q1_IQL).expect("q1 prepares");
        group.bench_function("q1_in_process", |b| {
            b.iter(|| {
                let i = ticks.get();
                ticks.set(i + 1);
                prepared_q1
                    .execute(&q1(&format!("ACC{i:05}q")))
                    .expect("q1 answers")
            })
        });
    }
    {
        let mut client = client.borrow_mut();
        let (q1_handle, _) = client.prepare(Q1_IQL).expect("q1 prepares over the wire");
        group.bench_function("q1_over_wire", |b| {
            b.iter(|| {
                let i = ticks.get();
                ticks.set(i + 1);
                client
                    .execute(q1_handle, &q1(&format!("ACC{i:05}q")))
                    .expect("q1 answers over the wire")
            })
        });

        group.bench_function("scan_streamed_over_wire", |b| {
            b.iter(|| {
                let (rows, chunks) = client
                    .query_chunked(ACCESSION_SCAN, 16)
                    .expect("scan streams");
                assert!(chunks >= 2);
                rows
            })
        });
    }

    // insert → push on its own connection, so the stream of deltas never
    // interleaves with the other legs' responses.
    {
        let mut subscriber = wire::Client::connect(handle.local_addr()).expect("connect");
        let (feed, _) = subscriber.prepare(ACCESSION_FEED).expect("feed prepares");
        let (sub_id, _) = subscriber
            .subscribe(feed, &iql::Params::new())
            .expect("subscribe");
        let next_id = Cell::new(5_000_000i64);
        group.bench_function("insert_to_push", |b| {
            b.iter(|| {
                let id = next_id.get();
                next_id.set(id + 1);
                subscriber
                    .insert(
                        "pedro",
                        "protein",
                        vec![vec![
                            id.into(),
                            format!("WIRE{id}").into(),
                            "bench".into(),
                            "E. remoti".into(),
                            Value::Float(1.0),
                            Value::Null,
                        ]],
                    )
                    .expect("insert commits");
                let push = subscriber
                    .recv_push(Duration::from_secs(5))
                    .expect("push channel healthy")
                    .expect("delta arrives");
                assert_eq!(push.0, sub_id);
            })
        });
        subscriber.close().expect("clean close");
    }

    group.finish();
    client.into_inner().close().expect("clean close");
    handle.shutdown();
}

criterion_group!(benches, table1_wire);
criterion_main!(benches);
