//! E1 (Table 1): the seven priority queries evaluated over the integrated dataspace.
//!
//! Regenerates the paper's Table 1 by printing each query's answer size once, then
//! benchmarks the per-query evaluation latency and sweeps Q1 across data scales.
//! Every query executes through the prepared path: the parameterised text plans
//! once and each timed iteration runs under the query's default bindings.

use bench::{bench_scale, integrated_dataspace, scale_sweep};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use proteomics::queries::priority_queries;
use std::time::Duration;

fn table1(c: &mut Criterion) {
    let ds = integrated_dataspace(&bench_scale());

    // Print the Table-1-style rows once so the bench output doubles as the report.
    eprintln!("\n[E1/Table 1] query answer sizes at the bench scale:");
    for q in priority_queries() {
        let n = ds
            .prepare(&q.iql)
            .and_then(|p| p.execute(&q.params))
            .map(|b| b.len())
            .unwrap_or(0);
        eprintln!("  {}: {} tuples — {}", q.name, n, q.description);
    }

    let mut group = c.benchmark_group("table1_queries");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for q in priority_queries() {
        let expr = iql::parse(&q.iql).expect("query parses");
        group.bench_function(&q.name, |b| {
            b.iter(|| {
                let provider = ds.provider().expect("provider");
                provider
                    .answer_bag_with(&expr, &q.params)
                    .expect("query answers")
            })
        });
    }
    group.finish();

    // The same queries with hash-join planning disabled: the nested-loop baseline
    // the planner's speedup is measured against.
    let mut naive = c.benchmark_group("table1_queries_nested_loops");
    naive
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for q in priority_queries() {
        let expr = iql::parse(&q.iql).expect("query parses");
        naive.bench_function(&q.name, |b| {
            b.iter(|| {
                let provider = ds.provider().expect("provider");
                provider
                    .answer_with_nested_loops_params(&expr, &q.params)
                    .expect("query answers")
            })
        });
    }
    naive.finish();

    // The batched dataspace entry point over all seven priority queries at once
    // (the pay-as-you-go re-run shape), against the same queries issued as a
    // sequential loop. Both share the dataspace's persistent plan/extent caches;
    // the batch fans out on the process-wide fetch pool.
    let queries = priority_queries();
    let batch: Vec<(&str, &iql::Params)> = queries
        .iter()
        .map(|q| (q.iql.as_str(), &q.params))
        .collect();
    let mut batched = c.benchmark_group("table1_query_all");
    batched
        .sample_size(30)
        .measurement_time(Duration::from_secs(4));
    batched.bench_function("sequential_loop", |b| {
        b.iter(|| {
            let results: Vec<_> = batch
                .iter()
                .map(|(q, params)| ds.prepare(q).and_then(|p| p.execute(params)))
                .collect();
            assert!(results.iter().all(Result::is_ok));
            results
        })
    });
    batched.bench_function("batched", |b| {
        b.iter(|| {
            let results = ds.query_all_bound(&batch);
            assert!(results.iter().all(Result::is_ok));
            results
        })
    });
    batched.finish();

    let mut sweep = c.benchmark_group("table1_q1_scale_sweep");
    sweep
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for (factor, scale) in scale_sweep() {
        let ds = integrated_dataspace(&scale);
        let q1 = &priority_queries()[0];
        let expr = iql::parse(&q1.iql).expect("q1 parses");
        sweep.bench_with_input(BenchmarkId::from_parameter(factor), &factor, |b, _| {
            b.iter(|| {
                let provider = ds.provider().expect("provider");
                provider
                    .answer_bag_with(&expr, &q1.params)
                    .expect("query answers")
            })
        });
    }
    sweep.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
