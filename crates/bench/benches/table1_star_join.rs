//! Star-schema join benchmarks: the Table-1-like shape the bushy enumerator
//! targets — one hub extent equi-joined to several satellites on different
//! keys, with skewed selectivities.
//!
//! The hub joins satellite A on a low-distinct key (unselective: a quarter of
//! the cross product survives) and satellite B on a near-unique key
//! (selective). The greedy chain reorder seeds from the smallest *extent*
//! (satellite A) and immediately materialises the large unselective
//! intermediate; the bushy enumerator's cost model runs the selective
//! hub ⋈ B join first, shrinking every later intermediate. Groups:
//!
//! * `bushy/N` — the default planner (DP enumeration over the join graph);
//! * `greedy_linear/N` — `Evaluator::without_bushy`, the PR 3 greedy order;
//! * `nested_loops/N` — the planner-free oracle, for scale (small N only).
//!
//! Run with `BENCH_JSON=BENCH_iql.json cargo bench -p bench --bench
//! table1_star_join` to record medians.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iql::env::Env;
use iql::value::{Bag, Value};
use iql::{parse, Evaluator, MapExtents};
use std::time::Duration;

/// One hub of `rows` tuples `{ka, kb, x}` — `ka` from a 4-value domain
/// (unselective), `kb` unique (selective) — plus a small satellite on each key.
fn star_fixture(rows: usize) -> MapExtents {
    let mut m = MapExtents::new();
    m.insert(
        "hub",
        Bag::from_values(
            (0..rows as i64)
                .map(|i| {
                    Value::tuple(vec![
                        Value::Int(i % 4),
                        Value::Int(i),
                        Value::str(format!("h{i}")),
                    ])
                })
                .collect(),
        ),
    );
    m.insert(
        "sat_a,v",
        Bag::from_values(
            (0..rows as i64 / 10)
                .map(|i| Value::pair(Value::Int(i % 4), Value::str(format!("a{i}"))))
                .collect(),
        ),
    );
    m.insert(
        "sat_b,v",
        Bag::from_values(
            (0..rows as i64 / 8)
                .map(|i| Value::pair(Value::Int(i * 8), Value::str(format!("b{i}"))))
                .collect(),
        ),
    );
    m
}

const STAR_QUERY: &str = "[{x, y, z} | {ka, kb, x} <- <<hub>>; {ka2, y} <- <<sat_a, v>>; \
                          ka2 = ka; {kb2, z} <- <<sat_b, v>>; kb2 = kb]";

fn star_join(c: &mut Criterion) {
    let expr = parse(STAR_QUERY).expect("star query parses");

    // Report the plan shapes once so the bench output doubles as the story.
    let probe = star_fixture(400);
    let bushy_stats = Evaluator::new(&probe).explain(&expr, &Env::new()).unwrap();
    let greedy_stats = Evaluator::new(&probe)
        .without_bushy()
        .explain(&expr, &Env::new())
        .unwrap();
    eprintln!("\n[table1_star_join] plan shapes at 400 hub rows:");
    eprintln!("  bushy : {bushy_stats:?}");
    eprintln!("  greedy: {greedy_stats:?}");

    let mut group = c.benchmark_group("table1_star_join");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for rows in [100usize, 400] {
        let extents = star_fixture(rows);
        // Sanity: both plans must agree with the nested-loop oracle.
        let planned = Evaluator::new(&extents).eval_closed(&expr).unwrap();
        let greedy = Evaluator::new(&extents)
            .without_bushy()
            .eval_closed(&expr)
            .unwrap();
        let naive = Evaluator::new(&extents)
            .with_nested_loops()
            .eval_closed(&expr)
            .unwrap();
        assert_eq!(planned, naive, "bushy must agree with nested loops");
        assert_eq!(greedy, naive, "greedy must agree with nested loops");

        group.bench_with_input(BenchmarkId::new("bushy", rows), &rows, |b, _| {
            b.iter(|| {
                Evaluator::new(&extents)
                    .eval_closed(&expr)
                    .expect("evaluates")
            })
        });
        group.bench_with_input(BenchmarkId::new("greedy_linear", rows), &rows, |b, _| {
            b.iter(|| {
                Evaluator::new(&extents)
                    .without_bushy()
                    .eval_closed(&expr)
                    .expect("evaluates")
            })
        });
        if rows <= 100 {
            group.bench_with_input(BenchmarkId::new("nested_loops", rows), &rows, |b, _| {
                b.iter(|| {
                    Evaluator::new(&extents)
                        .with_nested_loops()
                        .eval_closed(&expr)
                        .expect("evaluates")
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, star_join);
criterion_main!(benches);
