//! E3 (pay-as-you-go curve): cumulative manual effort versus the number of priority
//! queries answerable after each iteration, plus the cost of running a complete
//! incremental session.

use bench::integrated_session;
use criterion::{criterion_group, criterion_main, Criterion};
use proteomics::sources::CaseStudyScale;
use std::time::Duration;

fn pay_as_you_go(c: &mut Criterion) {
    let scale = CaseStudyScale::tiny();
    let session = integrated_session(&scale);
    eprintln!("\n[E3] pay-as-you-go curve (cumulative manual effort vs answerable queries):");
    for point in session.pay_as_you_go_curve() {
        eprintln!(
            "  iteration {:<2} {:<16} effort={:<3} answerable={}/7 {:?}",
            point.iteration,
            point.label,
            point.cumulative_manual,
            point.answerable_count(),
            point.answerable_queries
        );
    }

    let mut group = c.benchmark_group("pay_as_you_go");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("full_incremental_session", |b| {
        b.iter(|| {
            let session = integrated_session(&scale);
            assert!(session.all_queries_answerable());
            session.pay_as_you_go_curve().len()
        })
    });
    group.finish();
}

criterion_group!(benches, pay_as_you_go);
criterion_main!(benches);
