//! E8 (ablation, §2.3 step 4): schema-matcher quality and throughput on the
//! case-study schemas. Prints precision/recall against the known ground-truth
//! correspondences once, then benchmarks name-only and instance-assisted matching.

use automed::wrapper::{wrap_relational, SourceRegistry};
use criterion::{criterion_group, criterion_main, Criterion};
use iql::ast::SchemeRef;
use matching::{MatchConfig, Matcher};
use proteomics::sources::{
    generate_pedro, generate_pepseeker, pedro_schema, pepseeker_schema, CaseStudyScale,
};
use std::time::Duration;

fn ground_truth() -> Vec<(SchemeRef, SchemeRef)> {
    vec![
        (
            SchemeRef::table("peptidehit"),
            SchemeRef::table("peptidehit"),
        ),
        (
            SchemeRef::column("peptidehit", "sequence"),
            SchemeRef::column("peptidehit", "pepseq"),
        ),
        (
            SchemeRef::column("peptidehit", "score"),
            SchemeRef::column("peptidehit", "score"),
        ),
        (
            SchemeRef::column("peptidehit", "probability"),
            SchemeRef::column("peptidehit", "expect"),
        ),
        (
            SchemeRef::column("protein", "accession_num"),
            SchemeRef::column("proteinhit", "ProteinID"),
        ),
        (
            SchemeRef::column("proteinhit", "db_search"),
            SchemeRef::column("proteinhit", "fileparameters"),
        ),
        (
            SchemeRef::table("proteinhit"),
            SchemeRef::table("proteinhit"),
        ),
    ]
}

fn matcher_bench(c: &mut Criterion) {
    let pedro = wrap_relational(&pedro_schema());
    let pepseeker = wrap_relational(&pepseeker_schema());
    let scale = CaseStudyScale::tiny();
    let mut registry = SourceRegistry::new();
    registry.add_source(generate_pedro(&scale)).expect("pedro");
    registry
        .add_source(generate_pepseeker(&scale))
        .expect("pepseeker");

    let matcher = Matcher::with_config(MatchConfig {
        threshold: 0.55,
        ..MatchConfig::default()
    });
    let name_only = Matcher::best_per_left(&matcher.match_names(&pedro, &pepseeker));
    let with_instances =
        Matcher::best_per_left(&matcher.match_with_instances(&pedro, &pepseeker, &registry));
    let q_names = Matcher::evaluate(&name_only, &ground_truth());
    let q_instances = Matcher::evaluate(&with_instances, &ground_truth());
    eprintln!("\n[E8] matcher quality vs ground truth (pedro ↔ pepseeker):");
    eprintln!(
        "  name-only:        precision={:.2} recall={:.2} f1={:.2} ({} suggestions)",
        q_names.precision,
        q_names.recall,
        q_names.f1,
        name_only.len()
    );
    eprintln!(
        "  with instances:   precision={:.2} recall={:.2} f1={:.2} ({} suggestions)",
        q_instances.precision,
        q_instances.recall,
        q_instances.f1,
        with_instances.len()
    );

    let mut group = c.benchmark_group("matcher");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("name_only", |b| {
        b.iter(|| matcher.match_names(&pedro, &pepseeker).len())
    });
    group.bench_function("with_instances", |b| {
        b.iter(|| {
            matcher
                .match_with_instances(&pedro, &pepseeker, &registry)
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, matcher_bench);
criterion_main!(benches);
