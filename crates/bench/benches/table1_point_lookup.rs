//! Prepared point lookups: secondary-index probes vs linear residual scans.
//!
//! The pay-as-you-go workload's hottest shape is Q1 — a prepared
//! single-generator selection `x = ?accession` re-executed under a fresh
//! binding per call. With `point_lookup_indexes` on (the default), the cached
//! plan carries a secondary hash index over the scanned extent and each
//! execution probes it in O(1); with the indexes disabled, each execution
//! re-scans the extent and filters linearly.
//!
//! Both legs run over the 1×/2×/4× data-scale sweep so the growth curves are
//! directly comparable: the `no_index` leg is expected to grow roughly
//! linearly with scale, the `indexed` leg to stay near-flat. Every iteration
//! rotates the bound accession through the generated pool, so both legs mix
//! hit and miss probes the same way.

use bench::{integrated_dataspace, integrated_dataspace_with, scale_sweep};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dataspace_core::dataspace::DataspaceConfig;
use proteomics::queries::{q1, Q1_IQL};
use std::cell::Cell;
use std::time::Duration;

fn table1_point_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_point_lookup");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    for (factor, scale) in scale_sweep() {
        // The accession pool tracks the protein count, so rotating through
        // `proteins` distinct bindings touches existing and absent keys alike.
        let pool = scale.proteins as u64;

        let indexed = integrated_dataspace(&scale);
        let prepared = indexed.prepare(Q1_IQL).expect("q1 prepares");
        let ticks = Cell::new(0u64);
        group.bench_with_input(BenchmarkId::new("indexed", factor), &factor, |b, _| {
            b.iter(|| {
                let i = ticks.get();
                ticks.set(i + 1);
                let acc = format!("ACC{:05}", i % pool);
                prepared.execute(&q1(&acc)).expect("q1 answers")
            })
        });

        let no_index = integrated_dataspace_with(
            &scale,
            DataspaceConfig {
                point_lookup_indexes: false,
                ..Default::default()
            },
        );
        let prepared = no_index.prepare(Q1_IQL).expect("q1 prepares");
        let ticks = Cell::new(0u64);
        group.bench_with_input(BenchmarkId::new("no_index", factor), &factor, |b, _| {
            b.iter(|| {
                let i = ticks.get();
                ticks.set(i + 1);
                let acc = format!("ACC{:05}", i % pool);
                prepared.execute(&q1(&acc)).expect("q1 answers")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, table1_point_lookup);
criterion_main!(benches);
