//! What durability costs per insert: in-memory vs commit-log vs fsync.
//!
//! Every committed batch appends one checksummed record to the attached
//! commit log ([`Dataspace::open`]), so the write path gains a serialisation
//! plus a buffered file write — and, with `wal_fsync` on, a synchronous
//! flush to the device. This bench prices the three configurations against
//! each other on the same single-row insert workload, per source size:
//!
//! * **in_memory**: no log attached — the floor the durable legs sit on;
//! * **wal**: log attached, `wal_fsync: false` (OS-buffered appends; crash
//!   loses at most the unflushed tail, which recovery truncates away);
//! * **wal_fsync**: log attached, `wal_fsync: true` (every commit reaches
//!   the device before `insert` returns).
//!
//! Expectation: `wal` stays within a small constant of `in_memory` (the
//! record encode + buffered write), while `wal_fsync` is dominated by the
//! device flush and dwarfs both — the knob exists precisely because that
//! cost is workload-dependent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dataspace_core::dataspace::{Dataspace, DataspaceConfig};
use relational::schema::{DataType, RelColumn, RelSchema, RelTable};
use relational::Database;
use std::cell::Cell;
use std::path::PathBuf;
use std::time::Duration;

fn wal_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "dataspace-bench-durability-{}-{tag}.wal",
        std::process::id()
    ))
}

fn populated(rows: i64, fsync: bool) -> Dataspace {
    let mut schema = RelSchema::new("src");
    schema
        .add_table(
            RelTable::new("t")
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("label", DataType::Text))
                .with_primary_key(["id"]),
        )
        .expect("schema builds");
    let mut db = Database::new(schema);
    let batch: Vec<Vec<iql::Value>> = (0..rows)
        .map(|i| vec![i.into(), format!("w{}", i % 97).into()])
        .collect();
    db.insert_many("t", batch).expect("seed rows");
    let mut ds = Dataspace::with_config(DataspaceConfig {
        wal_fsync: fsync,
        ..DataspaceConfig::default()
    });
    ds.add_source(db).expect("add source");
    ds.federate().expect("federate");
    ds
}

fn table1_durability(c: &mut Criterion) {
    // The harness shim takes no warmup samples; spin the exact workload for a
    // second so the first group doesn't absorb the CPU's frequency ramp.
    let mut warm = populated(2_000, false);
    let deadline = std::time::Instant::now() + Duration::from_secs(1);
    let mut i = 2_000i64;
    while std::time::Instant::now() < deadline {
        warm.insert("src", "t", vec![i.into(), "w".into()])
            .expect("warmup insert");
        i += 1;
    }
    drop(warm);

    let mut group = c.benchmark_group("table1_durability");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    for rows in [500i64, 2_000, 8_000] {
        // Floor: the bare in-memory insert.
        let mut ds = populated(rows, false);
        let ticks = Cell::new(rows);
        group.bench_with_input(BenchmarkId::new("in_memory", rows), &rows, |b, _| {
            b.iter(|| {
                let i = ticks.get();
                ticks.set(i + 1);
                ds.insert("src", "t", vec![i.into(), format!("w{}", i % 97).into()])
                    .expect("insert");
            })
        });

        // Durable, OS-buffered: each insert also appends one log record.
        let path = wal_path(&format!("buffered-{rows}"));
        std::fs::remove_file(&path).ok();
        let mut ds = populated(rows, false);
        ds.open(&path).expect("attach log");
        let ticks = Cell::new(rows);
        group.bench_with_input(BenchmarkId::new("wal", rows), &rows, |b, _| {
            b.iter(|| {
                let i = ticks.get();
                ticks.set(i + 1);
                ds.insert("src", "t", vec![i.into(), format!("w{}", i % 97).into()])
                    .expect("logged insert");
            })
        });
        assert!(ds.stats().wal_appends > 0, "the durable leg must log");
        drop(ds);
        std::fs::remove_file(&path).ok();

        // Durable, synchronous: every commit reaches the device. Priced at
        // the smallest scale only — the flush dominates regardless of extent
        // size, and a full sweep would just repeat the same number slowly.
        if rows == 500 {
            let path = wal_path("fsync");
            std::fs::remove_file(&path).ok();
            let mut ds = populated(rows, true);
            ds.open(&path).expect("attach log");
            let ticks = Cell::new(rows);
            group.bench_with_input(BenchmarkId::new("wal_fsync", rows), &rows, |b, _| {
                b.iter(|| {
                    let i = ticks.get();
                    ticks.set(i + 1);
                    ds.insert("src", "t", vec![i.into(), format!("w{}", i % 97).into()])
                        .expect("fsynced insert");
                })
            });
            drop(ds);
            std::fs::remove_file(&path).ok();
        }
    }
    group.finish();
}

criterion_group!(benches, table1_durability);
criterion_main!(benches);
