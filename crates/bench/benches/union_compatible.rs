//! E4 (Figure 1): the classical union-compatible integration flow — wrapping,
//! transformation to union-compatible schemas, ident injection and global-schema
//! selection — benchmarked as a whole.

use automed::transformation::Transformation;
use automed::union_compat::{integrate_union_compatible, SourceIntegration};
use automed::wrapper::wrap_relational;
use automed::{Repository, SchemaObject};
use criterion::{criterion_group, criterion_main, Criterion};
use proteomics::sources::{gpmdb_schema, pedro_schema};
use std::time::Duration;

fn source_steps(
    tag: &str,
    table: &str,
    column: &str,
    schema: &automed::Schema,
) -> Vec<Transformation> {
    let mut steps = vec![
        Transformation::add(
            SchemaObject::table("UProtein"),
            iql::parse(&format!("[{{'{tag}', k}} | k <- <<{table}>>]")).expect("parses"),
        ),
        Transformation::add(
            SchemaObject::column("UProtein", "accession_num"),
            iql::parse(&format!(
                "[{{'{tag}', k, x}} | {{k, x}} <- <<{table}, {column}>>]"
            ))
            .expect("parses"),
        ),
    ];
    steps.extend(
        schema
            .objects()
            .map(|o| Transformation::contract_void_any(o.clone())),
    );
    steps
}

fn union_compatible(c: &mut Criterion) {
    let pedro = wrap_relational(&pedro_schema());
    let gpmdb = wrap_relational(&gpmdb_schema());
    eprintln!(
        "\n[E4] union-compatible integration over pedro ({} objects) and gpmdb ({} objects)",
        pedro.len(),
        gpmdb.len()
    );

    let mut group = c.benchmark_group("union_compatible");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("figure1_flow", |b| {
        b.iter(|| {
            let mut repo = Repository::new();
            repo.add_source_schema(pedro.clone()).expect("pedro");
            repo.add_source_schema(gpmdb.clone()).expect("gpmdb");
            let result = integrate_union_compatible(
                &mut repo,
                &[
                    SourceIntegration::new(
                        "pedro",
                        source_steps("PEDRO", "protein", "accession_num", &pedro),
                    ),
                    SourceIntegration::new(
                        "gpmdb",
                        source_steps("gpmDB", "proseq", "label", &gpmdb),
                    ),
                ],
                "GS",
            )
            .expect("integrates");
            result.nontrivial_transformations
        })
    });
    group.bench_function("wrap_relational_sources", |b| {
        b.iter(|| {
            let p = wrap_relational(&pedro_schema());
            let g = wrap_relational(&gpmdb_schema());
            p.len() + g.len()
        })
    });
    group.finish();
}

criterion_group!(benches, union_compatible);
criterion_main!(benches);
