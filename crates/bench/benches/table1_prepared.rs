//! Prepared execution vs parse-plus-plan-per-call text queries.
//!
//! The pay-as-you-go workload re-runs the same query shapes under different
//! parameters after every integration iteration. This bench pits the two ways
//! of doing that against each other, on the integrated dataspace at the bench
//! scale:
//!
//! * **prepared**: `Dataspace::prepare` once, then `PreparedQuery::execute`
//!   with a *fresh binding every iteration* — the expression is identical
//!   across bindings, so every execution after the first hits the plan cache;
//! * **text**: the pre-redesign client pattern — splice the parameter into the
//!   query text with `format!` and call `Dataspace::query`. Every iteration
//!   produces a never-seen text, so every call pays parse + plan (for the
//!   join queries that includes rebuilding the hash indexes).
//!
//! Both legs advance the same monotone counter, so each iteration of either
//! leg sees a binding no earlier iteration used — neither leg gets to coast on
//! a previously cached text.

use bench::{bench_scale, integrated_dataspace};
use criterion::{criterion_group, criterion_main, Criterion};
use proteomics::queries::{q1, q6, Q1_IQL, Q6_IQL};
use std::cell::Cell;
use std::time::Duration;

fn table1_prepared(c: &mut Criterion) {
    let ds = integrated_dataspace(&bench_scale());

    let mut group = c.benchmark_group("table1_prepared");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));

    // Q1: a single-generator selection — the prepared win here is parse + plan
    // bookkeeping only, the cheapest case for the text path.
    let prepared_q1 = ds.prepare(Q1_IQL).expect("q1 prepares");
    let ticks = Cell::new(0u64);
    group.bench_function("q1_prepared_execute", |b| {
        b.iter(|| {
            let i = ticks.get();
            ticks.set(i + 1);
            let acc = format!("ACC{i:05}q");
            prepared_q1.execute(&q1(&acc)).expect("q1 answers")
        })
    });
    group.bench_function("q1_text_parse_plan_per_call", |b| {
        b.iter(|| {
            let i = ticks.get();
            ticks.set(i + 1);
            // A fresh text per call: parameter spliced as a literal, so the
            // expression differs every iteration and nothing is reusable.
            let text = format!(
                "[{{s, k}} | {{s, k, x}} <- <<UProtein, accession_num>>; x = 'ACC{i:05}q']"
            );
            ds.query(&text).expect("q1 text answers")
        })
    });

    // Q6: a three-generator join chain — the text path replans and rebuilds
    // the join hash indexes on every call, the prepared path reuses one plan.
    let prepared_q6 = ds.prepare(Q6_IQL).expect("q6 prepares");
    group.bench_function("q6_prepared_execute", |b| {
        b.iter(|| {
            let i = ticks.get();
            ticks.set(i + 1);
            prepared_q6
                .execute(&q6("PEDRO", i as i64))
                .expect("q6 answers")
        })
    });
    group.bench_function("q6_text_parse_plan_per_call", |b| {
        b.iter(|| {
            let i = ticks.get();
            ticks.set(i + 1);
            let text = format!(
                "[{{s1, k1, seq, prob}} | {{{{s1, k1}}, {{s2, k2}}}} <- \
                 <<uPeptideHitToProteinHit_mm>>; s2 = 'PEDRO'; k2 = {i}; \
                 {{s3, k3, seq}} <- <<UPeptideHit, sequence>>; s3 = s1; k3 = k1; \
                 {{s4, k4, prob}} <- <<UPeptideHit, probability>>; s4 = s1; k4 = k1]"
            );
            ds.query(&text).expect("q6 text answers")
        })
    });
    group.finish();
}

criterion_group!(benches, table1_prepared);
criterion_main!(benches);
