//! E7 (BAV query processing): GAV unfolding and BAV reformulation of queries along
//! pathways of increasing length, plus the LAV view-inversion rule used for automatic
//! reverse-query generation.

use automed::qp::{bav, gav, lav};
use automed::transformation::Transformation;
use automed::{Pathway, Schema, SchemaObject, SchemeRef};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// A pathway that renames/derives a chain of views over a base table.
fn chained_pathway(n: usize) -> (Schema, Pathway) {
    let mut source = Schema::new("src");
    source.add_object(SchemaObject::table("base")).expect("add");
    source
        .add_object(SchemaObject::column("base", "value"))
        .expect("add");
    let mut pathway = Pathway::new("src", "tgt");
    for i in 0..n {
        let previous = if i == 0 {
            "base".to_string()
        } else {
            format!("v{}", i - 1)
        };
        pathway.push(Transformation::add(
            SchemaObject::table(format!("v{i}")),
            iql::parse(&format!("[k | k <- <<{previous}>>]")).expect("parses"),
        ));
    }
    (source, pathway)
}

fn query_reformulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_reformulation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    for n in [4usize, 16, 64] {
        let (source, pathway) = chained_pathway(n);
        let query = iql::parse(&format!("count <<v{}>>", n - 1)).expect("parses");
        group.bench_with_input(BenchmarkId::new("gav_unfold", n), &n, |b, _| {
            b.iter(|| gav::unfold_along_pathway(&query, &pathway).expect("unfolds"))
        });
        group.bench_with_input(BenchmarkId::new("bav_to_source", n), &n, |b, _| {
            b.iter(|| {
                let r =
                    bav::reformulate_to_source(&query, &pathway, &source).expect("reformulates");
                assert!(r.is_complete());
                r.query
            })
        });
    }

    // LAV inversion of the paper-shaped tagging views.
    let view = SchemeRef::column("UProtein", "accession_num");
    let body =
        iql::parse("[{'PEDRO', k, x} | {k, x} <- <<protein, accession_num>>]").expect("parses");
    group.bench_function("lav_invert_tagging_view", |b| {
        b.iter(|| lav::invert_view(&view, &body).expect("invertible").0.key())
    });
    group.finish();
}

criterion_group!(benches, query_reformulation);
criterion_main!(benches);
