//! Columnar vs row engine on the Table-1 workload: Q1 (selection), Q4 and Q6
//! (join-heavy) executed over two otherwise identical integrated dataspaces —
//! one with the vectorised columnar executor (the default), one with
//! `columnar: false` forcing every plan onto the recursive row engine — at two
//! data scales. Both run the *same* cached plans; the measured gap is purely
//! the executor.

use bench::integrated_dataspace_with;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dataspace_core::dataspace::DataspaceConfig;
use proteomics::queries::priority_queries;
use proteomics::sources::CaseStudyScale;
use std::time::Duration;

/// A case-study scale sized so the generated sources hold roughly `rows`
/// peptide-hit rows (the workload's dominant extent).
fn scale_for(rows: usize) -> CaseStudyScale {
    CaseStudyScale {
        proteins: rows / 3,
        protein_hits: (rows * 2) / 3,
        peptide_hits: rows,
        searches: (rows / 50).max(4),
        overlap: 0.6,
        seed: 42,
    }
}

fn table1_columnar(c: &mut Criterion) {
    let queries = priority_queries();
    let picked: Vec<_> = queries
        .iter()
        .filter(|q| matches!(q.name.as_str(), "Q1" | "Q4" | "Q6"))
        .collect();

    let mut group = c.benchmark_group("table1_columnar");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for rows in [400usize, 1600] {
        let scale = scale_for(rows);
        let columnar = integrated_dataspace_with(&scale, DataspaceConfig::default());
        let row_only = integrated_dataspace_with(
            &scale,
            DataspaceConfig {
                columnar: false,
                ..DataspaceConfig::default()
            },
        );
        for q in &picked {
            let expr = iql::parse(&q.iql).expect("query parses");
            // Sanity: both engines agree before anything is timed.
            let a = columnar
                .provider()
                .expect("provider")
                .answer_bag_with(&expr, &q.params)
                .expect("columnar answers");
            let b = row_only
                .provider()
                .expect("provider")
                .answer_bag_with(&expr, &q.params)
                .expect("row answers");
            assert_eq!(
                a.items(),
                b.items(),
                "{} diverges between engines at {rows} rows",
                q.name
            );

            group.bench_with_input(
                BenchmarkId::new(format!("{}_columnar", q.name), rows),
                &rows,
                |bch, _| {
                    bch.iter(|| {
                        let provider = columnar.provider().expect("provider");
                        provider
                            .answer_bag_with(&expr, &q.params)
                            .expect("query answers")
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{}_row", q.name), rows),
                &rows,
                |bch, _| {
                    bch.iter(|| {
                        let provider = row_only.provider().expect("provider");
                        provider
                            .answer_bag_with(&expr, &q.params)
                            .expect("query answers")
                    })
                },
            );
        }
        let stats = columnar.stats();
        assert!(
            stats.columnar_execs > 0,
            "the columnar leg never ran the columnar engine at {rows} rows"
        );
        eprintln!(
            "[table1_columnar] {rows} rows: columnar_execs={} row_fallbacks={}",
            stats.columnar_execs, stats.row_fallbacks
        );
    }
    group.finish();
}

criterion_group!(benches, table1_columnar);
criterion_main!(benches);
