//! Supporting microbenchmarks: IQL parsing, evaluation of selections and joins over
//! growing extents, and bag-union throughput — the primitives every dataspace query
//! bottoms out in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iql::value::{Bag, Value};
use iql::{parse, Evaluator, MapExtents};
use std::time::Duration;

fn fixture(rows: usize) -> MapExtents {
    let mut m = MapExtents::new();
    m.insert_keys("protein", (0..rows as i64).collect());
    m.insert(
        "protein,accession_num",
        Bag::from_values(
            (0..rows as i64)
                .map(|k| Value::pair(Value::Int(k), Value::str(format!("ACC{:05}", k % 97))))
                .collect(),
        ),
    );
    m.insert(
        "proseq,label",
        Bag::from_values(
            (0..rows as i64)
                .map(|k| {
                    Value::pair(
                        Value::Int(k + 10_000),
                        Value::str(format!("ACC{:05}", k % 89)),
                    )
                })
                .collect(),
        ),
    );
    m
}

fn iql_eval(c: &mut Criterion) {
    let selection = "[x | {k, x} <- <<protein, accession_num>>; k < 100]";
    let join =
        "[{k1, k2} | {k1, x} <- <<protein, accession_num>>; {k2, y} <- <<proseq, label>>; x = y]";
    let aggregate = "count(distinct [x | {k, x} <- <<protein, accession_num>>])";

    let mut parse_group = c.benchmark_group("iql_parse");
    parse_group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for (name, text) in [
        ("selection", selection),
        ("join", join),
        ("aggregate", aggregate),
    ] {
        parse_group.bench_function(name, |b| b.iter(|| parse(text).expect("parses")));
    }
    parse_group.finish();

    let mut eval_group = c.benchmark_group("iql_eval");
    eval_group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for rows in [100usize, 400, 1600] {
        let extents = fixture(rows);
        for (name, text) in [("selection", selection), ("aggregate", aggregate)] {
            let expr = parse(text).expect("parses");
            eval_group.bench_with_input(BenchmarkId::new(name, rows), &rows, |b, _| {
                b.iter(|| {
                    Evaluator::new(&extents)
                        .eval_closed(&expr)
                        .expect("evaluates")
                })
            });
        }
        // Hash-join planning keeps the join near-linear at every size…
        let expr = parse(join).expect("parses");
        eval_group.bench_with_input(BenchmarkId::new("join", rows), &rows, |b, _| {
            b.iter(|| {
                Evaluator::new(&extents)
                    .eval_closed(&expr)
                    .expect("evaluates")
            })
        });
        // …and a shared plan cache removes planning + index building from re-runs
        // entirely (the pay-as-you-go repeated-priority-query pattern).
        let cache = std::sync::Arc::new(iql::PlanCache::new());
        eval_group.bench_with_input(BenchmarkId::new("join_cached_plan", rows), &rows, |b, _| {
            b.iter(|| {
                Evaluator::new(&extents)
                    .with_plan_cache(std::sync::Arc::clone(&cache))
                    .eval_closed(&expr)
                    .expect("evaluates")
            })
        });
        // …while the nested-loop baseline is quadratic; keep it to the smaller sizes.
        if rows <= 400 {
            eval_group.bench_with_input(
                BenchmarkId::new("join_nested_loops", rows),
                &rows,
                |b, _| {
                    b.iter(|| {
                        Evaluator::new(&extents)
                            .with_nested_loops()
                            .eval_closed(&expr)
                            .expect("evaluates")
                    })
                },
            );
        }
    }
    eval_group.finish();

    let mut bag_group = c.benchmark_group("bag_algebra");
    bag_group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let a = Bag::from_values((0..5_000).map(Value::Int).collect());
    let b_bag = Bag::from_values((2_500..7_500).map(Value::Int).collect());
    bag_group.bench_function("union_5k", |bench| bench.iter(|| a.union(&b_bag).len()));
    bag_group.bench_function("difference_5k", |bench| {
        bench.iter(|| a.difference(&b_bag).len())
    });
    bag_group.bench_function("distinct_5k", |bench| {
        bench.iter(|| a.union(&a).distinct().len())
    });
    bag_group.finish();
}

criterion_group!(benches, iql_eval);
criterion_main!(benches);
