//! E5 (Figures 2–4): the schema-level operations of the intersection-schema
//! technique — federation, intersection construction, schema difference and global
//! schema derivation — benchmarked individually.

use bench::federated_dataspace;
use criterion::{criterion_group, criterion_main, Criterion};
use dataspace_core::difference::difference;
use dataspace_core::federated::federate;
use dataspace_core::global::derive_global;
use dataspace_core::intersection::build_intersection;
use proteomics::intersection_integration::{iteration_q1, iteration_q4};
use proteomics::sources::CaseStudyScale;
use std::time::Duration;

fn schema_derivation(c: &mut Criterion) {
    let ds = federated_dataspace(&CaseStudyScale::tiny());
    let repo = ds.repository();
    let members: Vec<&automed::Schema> = ds
        .source_names()
        .iter()
        .map(|n| repo.schema(n).expect("member"))
        .collect();
    eprintln!(
        "\n[E5] schema derivation over {} sources with {} federated objects",
        members.len(),
        ds.federated_schema().expect("federated").len()
    );

    let mut group = c.benchmark_group("schema_derivation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    group.bench_function("federate_three_sources", |b| {
        b.iter(|| {
            federate("F", members.iter().copied())
                .expect("federates")
                .schema
                .len()
        })
    });

    group.bench_function("build_intersection_q1", |b| {
        b.iter(|| {
            build_intersection(&iteration_q1(), repo)
                .expect("builds")
                .schema
                .len()
        })
    });

    group.bench_function("build_intersection_q4", |b| {
        b.iter(|| {
            build_intersection(&iteration_q4().expect("spec"), repo)
                .expect("builds")
                .schema
                .len()
        })
    });

    let i1 = build_intersection(&iteration_q1(), repo).expect("builds");
    group.bench_function("schema_difference_pedro_minus_i1", |b| {
        let pedro = repo.schema("pedro").expect("pedro");
        let pathway = i1
            .pathways
            .iter()
            .find(|p| p.source == "pedro")
            .expect("pathway");
        b.iter(|| difference(pedro, pathway).expect("difference").schema.len())
    });

    group.bench_function("derive_global_with_redundancy_removal", |b| {
        b.iter(|| {
            derive_global("G", &members, &[&i1], true)
                .expect("derives")
                .schema
                .len()
        })
    });

    group.bench_function("derive_global_keeping_redundant", |b| {
        b.iter(|| {
            derive_global("G", &members, &[&i1], false)
                .expect("derives")
                .schema
                .len()
        })
    });

    group.finish();
}

criterion_group!(benches, schema_derivation);
criterion_main!(benches);
