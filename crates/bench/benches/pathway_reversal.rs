//! E7 (§2.1 pathway machinery): automatic pathway reversal and pathway application,
//! swept over pathway length.

use automed::transformation::Transformation;
use automed::{Pathway, Schema, SchemaObject};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn pathway_of_length(n: usize) -> (Schema, Pathway) {
    let mut schema = Schema::new("base");
    schema.add_object(SchemaObject::table("base")).expect("add");
    let mut pathway = Pathway::new("base", "derived");
    for i in 0..n {
        pathway.push(Transformation::add(
            SchemaObject::table(format!("t{i}")),
            iql::parse(&format!(
                "[{{'S', k}} | k <- <<{}>>]",
                if i == 0 {
                    "base".into()
                } else {
                    format!("t{}", i - 1)
                }
            ))
            .expect("parses"),
        ));
    }
    (schema, pathway)
}

fn pathway_reversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("pathway_reversal");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [8usize, 64, 512] {
        let (schema, pathway) = pathway_of_length(n);
        group.bench_with_input(BenchmarkId::new("reverse", n), &n, |b, _| {
            b.iter(|| pathway.reverse().len())
        });
        group.bench_with_input(BenchmarkId::new("apply", n), &n, |b, _| {
            b.iter(|| pathway.apply_to(&schema).expect("applies").len())
        });
        group.bench_with_input(
            BenchmarkId::new("round_trip_restores_schema", n),
            &n,
            |b, _| {
                b.iter(|| {
                    let forward = pathway.apply_to(&schema).expect("applies");
                    let back = pathway.reverse().apply_to(&forward).expect("reverses");
                    assert!(back.syntactically_identical(&schema));
                    back.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, pathway_reversal);
criterion_main!(benches);
