//! # bench — shared helpers for the benchmark harness
//!
//! Each bench target under `benches/` regenerates one of the paper's evaluation
//! artefacts (see DESIGN.md §5 and EXPERIMENTS.md). The helpers here build the
//! fixtures the benches share: populated dataspaces at a given scale and ready-made
//! intersection specifications.

use dataspace_core::dataspace::{Dataspace, DataspaceConfig};
use dataspace_core::workflow::IntegrationSession;
use proteomics::intersection_integration::all_iterations;
use proteomics::queries::priority_queries;
use proteomics::sources::{generate_gpmdb, generate_pedro, generate_pepseeker, CaseStudyScale};

/// Build a dataspace over the three case-study sources, federated but not yet
/// integrated.
pub fn federated_dataspace(scale: &CaseStudyScale) -> Dataspace {
    let mut ds = Dataspace::with_config(DataspaceConfig {
        drop_redundant: false,
        ..Default::default()
    });
    ds.add_source(generate_pedro(scale)).expect("add pedro");
    ds.add_source(generate_gpmdb(scale)).expect("add gpmdb");
    ds.add_source(generate_pepseeker(scale))
        .expect("add pepseeker");
    ds.federate().expect("federate");
    ds
}

/// Build a fully integrated dataspace (all five case-study iterations applied).
pub fn integrated_dataspace(scale: &CaseStudyScale) -> Dataspace {
    let mut ds = federated_dataspace(scale);
    for (_query, spec) in all_iterations().expect("specs") {
        ds.integrate(spec).expect("integrate");
    }
    ds
}

/// Build a fully integrated dataspace under a custom engine configuration
/// (`drop_redundant` is forced off, as everywhere in the harness). The
/// point-lookup bench uses this to pit the secondary-index leg against an
/// otherwise identical dataspace with `point_lookup_indexes: false`.
pub fn integrated_dataspace_with(scale: &CaseStudyScale, config: DataspaceConfig) -> Dataspace {
    let mut ds = Dataspace::with_config(DataspaceConfig {
        drop_redundant: false,
        ..config
    });
    ds.add_source(generate_pedro(scale)).expect("add pedro");
    ds.add_source(generate_gpmdb(scale)).expect("add gpmdb");
    ds.add_source(generate_pepseeker(scale))
        .expect("add pepseeker");
    ds.federate().expect("federate");
    for (_query, spec) in all_iterations().expect("specs") {
        ds.integrate(spec).expect("integrate");
    }
    ds
}

/// Build a fully integrated integration session (dataspace + priority queries +
/// pay-as-you-go history).
pub fn integrated_session(scale: &CaseStudyScale) -> IntegrationSession {
    let ds = Dataspace::with_config(DataspaceConfig {
        drop_redundant: false,
        ..Default::default()
    });
    let mut session = IntegrationSession::with_dataspace(ds);
    session
        .add_source(generate_pedro(scale))
        .expect("add pedro");
    session
        .add_source(generate_gpmdb(scale))
        .expect("add gpmdb");
    session
        .add_source(generate_pepseeker(scale))
        .expect("add pepseeker");
    session.set_priority_queries(priority_queries());
    session.federate().expect("federate");
    for (_query, spec) in all_iterations().expect("specs") {
        session.iterate(spec).expect("iterate");
    }
    session
}

/// The scale used by most benches: small enough for quick runs, large enough that
/// query evaluation dominates fixed costs.
pub fn bench_scale() -> CaseStudyScale {
    CaseStudyScale {
        proteins: 40,
        protein_hits: 80,
        peptide_hits: 120,
        searches: 8,
        overlap: 0.6,
        seed: 42,
    }
}

/// A sweep of data scales for throughput-vs-size series.
pub fn scale_sweep() -> Vec<(usize, CaseStudyScale)> {
    [1usize, 2, 4]
        .into_iter()
        .map(|factor| {
            (
                factor,
                CaseStudyScale {
                    proteins: 30 * factor,
                    protein_hits: 60 * factor,
                    peptide_hits: 90 * factor,
                    searches: 6 * factor,
                    overlap: 0.6,
                    seed: 42,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build_and_answer_queries() {
        let scale = CaseStudyScale::tiny();
        let ds = integrated_dataspace(&scale);
        assert!(ds.can_answer("count <<UProtein>>"));
        let session = integrated_session(&scale);
        assert!(session.all_queries_answerable());
        assert_eq!(scale_sweep().len(), 3);
    }
}
