//! The storage layer beneath [`iql::ExtentProvider`]: MVCC snapshots over an
//! append-only store.
//!
//! A [`StorageEngine`] is what a wrapped data source actually persists rows in.
//! The contract is deliberately small and log-structured:
//!
//! * writes land as **committed batches** — [`StorageEngine::commit_batch`]
//!   validates and applies a whole batch atomically and returns a
//!   [`BatchCommit`] naming the snapshot ids on either side of the commit;
//! * every row carries the [`SnapshotId`] of the batch that appended it, so
//!   the rows **visible at** any snapshot are a stable prefix of each table
//!   ([`StorageEngine::visible_rows`]) — readers evaluate against an immutable
//!   snapshot while writers keep appending;
//! * [`StorageEngine::begin_snapshot`] hands out a [`Snapshot`] pin: a cheap,
//!   clonable handle that keeps the engine's active-reader count honest
//!   (observable via [`StorageEngine::snapshots_active`] and the dataspace's
//!   `stats()`).
//!
//! [`crate::store::Database`] is the in-memory implementation; the file-backed
//! commit log in [`crate::wal`] makes any engine's history durable by recording
//! one [`crate::wal::LogRecord`] per committed batch. The snapshot id doubles
//! as the provider version stamp ([`iql::ExtentProvider::version`]), which is
//! how plan caches, extent memos, point-lookup indexes, key histograms and
//! subscription `synced` stamps all become snapshot-pinned without changing
//! their types.

use crate::error::RelError;
use crate::schema::RelSchema;
use crate::store::{Row, TableDelta};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The identifier of one consistent point in an engine's commit history.
///
/// Re-exported from [`iql::SnapshotId`] so the provider contract and the
/// storage layer agree on the stamp type: snapshot 0 is the empty engine, and
/// every committed (non-empty) batch advances the current snapshot by one.
pub type SnapshotId = iql::SnapshotId;

/// A pinned MVCC snapshot: the id of a consistent point in the commit history
/// plus a liveness token counted by [`StorageEngine::snapshots_active`].
///
/// Cloning a snapshot pins it again; dropping the last clone releases the pin.
/// A `Snapshot` is a *pin*, not a borrow — it stays valid (and cheap) however
/// long the reader holds it, because the store is append-only: the rows visible
/// at `id` are never reordered, rewritten or removed by later commits.
#[derive(Debug)]
pub struct Snapshot {
    id: SnapshotId,
    active: Arc<AtomicUsize>,
}

impl Snapshot {
    pub(crate) fn pin(id: SnapshotId, active: Arc<AtomicUsize>) -> Self {
        active.fetch_add(1, Ordering::AcqRel);
        Snapshot { id, active }
    }

    /// The snapshot's id — what [`iql::ExtentProvider::version`] reports for a
    /// provider pinned to this snapshot.
    pub fn id(&self) -> SnapshotId {
        self.id
    }
}

impl Clone for Snapshot {
    fn clone(&self) -> Self {
        Snapshot::pin(self.id, Arc::clone(&self.active))
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// What one committed write batch did: the extent-level [`TableDelta`] plus the
/// snapshot ids on either side of the commit.
///
/// Both stamps come from **inside the commit's critical section** (the engine
/// is `&mut` for the duration), so `pre_snapshot`/`post_snapshot` are exact —
/// there is no window in which a concurrent writer can slip between reading
/// the pre-stamp and applying the batch. Downstream stamp consumers (the
/// dataspace's subscription `synced` bookkeeping) derive their pre/post pair
/// from these instead of sampling the provider before the write.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchCommit {
    /// Scheme-keyed extent contributions of the batch (empty for empty batches).
    pub delta: TableDelta,
    /// The snapshot the engine was at when the commit started.
    pub pre_snapshot: SnapshotId,
    /// The snapshot the commit produced. Equals `pre_snapshot` for an empty
    /// batch (nothing appended, history unchanged); exactly
    /// `pre_snapshot + 1` otherwise.
    pub post_snapshot: SnapshotId,
}

impl BatchCommit {
    /// Whether the batch appended anything (an empty batch commits nothing and
    /// leaves the snapshot untouched).
    pub fn appended(&self) -> bool {
        self.post_snapshot != self.pre_snapshot
    }
}

/// An append-only, snapshot-versioned row store for one relational schema.
///
/// See the module docs for the contract. Implementations must keep the
/// invariants:
///
/// * `current_snapshot` starts at 0 and advances by exactly one per committed
///   non-empty batch; failed or empty batches leave it unchanged;
/// * `visible_rows(t, s)` is a prefix of `visible_rows(t, s')` for `s <= s'`,
///   and `visible_rows(t, current_snapshot())` is the whole table;
/// * a row appended by the commit that produced snapshot `s` is visible at `s`
///   and invisible at every earlier snapshot.
pub trait StorageEngine {
    /// The schema the engine stores rows for.
    fn schema(&self) -> &RelSchema;

    /// The id of the latest committed snapshot.
    fn current_snapshot(&self) -> SnapshotId;

    /// Pin the latest committed snapshot for reading.
    fn begin_snapshot(&self) -> Snapshot;

    /// How many [`Snapshot`] pins are currently live (clones included).
    fn snapshots_active(&self) -> usize;

    /// Validate and apply one write batch atomically; on success every row is
    /// stamped with the new snapshot id. On error nothing is applied and the
    /// snapshot does not move.
    fn commit_batch(&mut self, table: &str, rows: Vec<Row>) -> Result<BatchCommit, RelError>;

    /// The rows of `table` visible at `snapshot`: the stable prefix appended
    /// by commits up to and including that snapshot. An unknown table is an
    /// empty slice, and a snapshot at or past `current_snapshot()` sees the
    /// whole table.
    fn visible_rows(&self, table: &str, snapshot: SnapshotId) -> &[Row];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, RelColumn, RelTable};
    use crate::store::Database;
    use iql::value::Value;

    fn engine() -> Database {
        let mut s = RelSchema::new("pedro");
        s.add_table(
            RelTable::new("protein")
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("accession_num", DataType::Text))
                .with_primary_key(["id"]),
        )
        .unwrap();
        Database::new(s)
    }

    fn row(id: i64) -> Row {
        vec![id.into(), format!("P{id}").into()]
    }

    #[test]
    fn commit_stamps_are_contiguous_and_from_the_commit() {
        let mut db = engine();
        assert_eq!(db.current_snapshot(), 0);
        let c1 = db.commit_batch("protein", vec![row(1), row(2)]).unwrap();
        assert_eq!((c1.pre_snapshot, c1.post_snapshot), (0, 1));
        assert!(c1.appended());
        let c2 = db.commit_batch("protein", vec![row(3)]).unwrap();
        assert_eq!((c2.pre_snapshot, c2.post_snapshot), (1, 2));
        assert_eq!(db.current_snapshot(), 2);
    }

    #[test]
    fn empty_and_failed_batches_leave_the_snapshot_alone() {
        let mut db = engine();
        db.commit_batch("protein", vec![row(1)]).unwrap();
        let empty = db.commit_batch("protein", Vec::new()).unwrap();
        assert_eq!((empty.pre_snapshot, empty.post_snapshot), (1, 1));
        assert!(!empty.appended());
        assert!(empty.delta.appended.is_empty());
        // Duplicate key: the whole batch is rejected, snapshot untouched.
        assert!(db.commit_batch("protein", vec![row(2), row(1)]).is_err());
        assert_eq!(db.current_snapshot(), 1);
        assert_eq!(db.visible_rows("protein", 1).len(), 1);
    }

    #[test]
    fn visible_rows_are_a_snapshot_prefix() {
        let mut db = engine();
        db.commit_batch("protein", vec![row(1), row(2)]).unwrap();
        db.commit_batch("protein", vec![row(3)]).unwrap();
        db.commit_batch("protein", vec![row(4), row(5)]).unwrap();
        assert_eq!(db.visible_rows("protein", 0).len(), 0);
        assert_eq!(db.visible_rows("protein", 1).len(), 2);
        assert_eq!(db.visible_rows("protein", 2).len(), 3);
        assert_eq!(db.visible_rows("protein", 3).len(), 5);
        // Past-the-end snapshots and the current snapshot see everything.
        assert_eq!(db.visible_rows("protein", 99).len(), 5);
        assert_eq!(db.visible_rows("protein", 2)[2][0], Value::Int(3));
        assert!(db.visible_rows("no_such_table", 3).is_empty());
    }

    #[test]
    fn snapshot_pins_are_counted_and_survive_commits() {
        let mut db = engine();
        db.commit_batch("protein", vec![row(1)]).unwrap();
        assert_eq!(db.snapshots_active(), 0);
        let snap = db.begin_snapshot();
        assert_eq!(snap.id(), 1);
        let again = snap.clone();
        assert_eq!(db.snapshots_active(), 2);
        db.commit_batch("protein", vec![row(2)]).unwrap();
        // The pinned snapshot still answers with its stable prefix.
        assert_eq!(db.visible_rows("protein", snap.id()).len(), 1);
        assert_eq!(db.visible_rows("protein", db.current_snapshot()).len(), 2);
        drop(again);
        assert_eq!(db.snapshots_active(), 1);
        drop(snap);
        assert_eq!(db.snapshots_active(), 0);
    }
}
