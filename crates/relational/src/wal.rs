//! A file-backed commit log: the durable half of the storage layer.
//!
//! Every committed write batch ([`crate::storage::BatchCommit`]) can be
//! recorded as one [`LogRecord`] — the snapshot id the commit produced, the
//! source and table it landed in, and the raw rows. Replaying the records in
//! order through the normal validated insert path reproduces the exact store
//! (same rows, same snapshot ids, same extents), which is what
//! `core::Dataspace::open` does on recovery.
//!
//! ## On-disk format
//!
//! The log is a single append-only file:
//!
//! ```text
//! [8-byte magic "DSWAL\0\0\x01"]
//! [record]*
//!
//! record  := [u32 LE payload length] [u32 LE FNV-1a checksum of payload] [payload]
//! payload := [u64 LE snapshot id] [str source] [str table]
//!            [u32 LE row count] ([u32 LE column count] [value]*)*
//! str     := [u32 LE byte length] [UTF-8 bytes]
//! value   := 0x00                        -- Null
//!          | 0x01 [u8 0|1]               -- Bool
//!          | 0x02 [i64 LE]               -- Int
//!          | 0x03 [u64 LE float bits]    -- Float
//!          | 0x04 [str]                  -- Str
//! ```
//!
//! Rows hold scalars only (the schema type checker admits nothing else), so
//! five value tags cover every storable value. Recovery reads records until
//! the first torn or corrupt one — a partial length/checksum/payload at the
//! tail is the signature of a crash mid-append — **truncates** the file back
//! to the last whole record, and reports how many bytes were dropped. A
//! corrupt record therefore never poisons the log: everything durably
//! committed before it survives.
//!
//! Durability is a knob: with `fsync` on, every append runs `File::sync_data`
//! before returning (a crash loses nothing acknowledged); with it off the OS
//! page cache decides (a crash may drop the newest suffix, but the truncating
//! recovery still yields a consistent prefix). [`CommitLog::compact`] rewrites
//! the log as one merged record per (source, table) — same replayed state,
//! bounded file size — via a temp file + atomic rename.

use crate::store::Row;
use iql::value::Value;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::storage::SnapshotId;

/// The 8-byte file magic: identifies a dataspace commit log, format version 1.
const MAGIC: [u8; 8] = *b"DSWAL\0\0\x01";

/// One committed write batch, as recorded in the log.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// The snapshot id the commit produced in its source database.
    pub snapshot: SnapshotId,
    /// The data source (member database) the batch landed in.
    pub source: String,
    /// The table the rows went into.
    pub table: String,
    /// The raw rows, exactly as passed to the insert.
    pub rows: Vec<Row>,
}

/// What [`CommitLog::open`] found on disk.
#[derive(Debug)]
pub struct RecoveredLog {
    /// The log, positioned for appending.
    pub log: CommitLog,
    /// Every whole record, in append order — replay these through the insert
    /// path to reproduce the logged state.
    pub records: Vec<LogRecord>,
    /// Bytes dropped from a torn or corrupt tail (0 for a clean log).
    pub truncated_bytes: u64,
}

/// What [`CommitLog::compact`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// Records in the log before compaction.
    pub records_before: usize,
    /// Records after: one per (source, table) pair with any rows.
    pub records_after: usize,
}

/// An append-only, checksummed commit log backed by one file.
#[derive(Debug)]
pub struct CommitLog {
    file: File,
    path: PathBuf,
    fsync: bool,
    appends: u64,
}

impl CommitLog {
    /// Open (or create) the log at `path`, validating every record and
    /// truncating a torn tail. With `fsync` set, every later append is
    /// `sync_data`'d before it returns.
    pub fn open(path: impl AsRef<Path>, fsync: bool) -> io::Result<RecoveredLog> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            file.write_all(&MAGIC)?;
            file.sync_data()?;
            return Ok(RecoveredLog {
                log: CommitLog {
                    file,
                    path,
                    fsync,
                    appends: 0,
                },
                records: Vec::new(),
                truncated_bytes: 0,
            });
        }
        let mut bytes = Vec::with_capacity(len as usize);
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;
        if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: not a dataspace commit log (bad magic)", path.display()),
            ));
        }
        let mut records = Vec::new();
        let mut good_end = MAGIC.len();
        let mut cursor = MAGIC.len();
        // Read whole records until the first torn or corrupt one; everything
        // after that point is a crash artefact and gets truncated away.
        while let Some((record, next)) = read_record(&bytes, cursor) {
            records.push(record);
            good_end = next;
            cursor = next;
        }
        let truncated_bytes = (bytes.len() - good_end) as u64;
        if truncated_bytes > 0 {
            file.set_len(good_end as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(good_end as u64))?;
        Ok(RecoveredLog {
            log: CommitLog {
                file,
                path,
                fsync,
                appends: 0,
            },
            records,
            truncated_bytes,
        })
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether appends are fsync'd before returning.
    pub fn fsync(&self) -> bool {
        self.fsync
    }

    /// Records appended through this handle (recovery replays not included).
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Append one committed batch to the log.
    pub fn append(&mut self, record: &LogRecord) -> io::Result<()> {
        let payload = encode_payload(record)?;
        let mut framed = Vec::with_capacity(payload.len() + 8);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        self.file.write_all(&framed)?;
        if self.fsync {
            self.file.sync_data()?;
        }
        self.appends += 1;
        Ok(())
    }

    /// Read back every record currently in the log (the handle's append
    /// position is preserved).
    pub fn records(&mut self) -> io::Result<Vec<LogRecord>> {
        let end = self.file.stream_position()?;
        self.file.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::new();
        self.file.read_to_end(&mut bytes)?;
        self.file.seek(SeekFrom::Start(end))?;
        let mut records = Vec::new();
        let mut cursor = MAGIC.len();
        while let Some((record, next)) = read_record(&bytes, cursor) {
            records.push(record);
            cursor = next;
        }
        Ok(records)
    }

    /// Compact the log: merge its records into one record per (source, table)
    /// pair — first-appearance order, rows concatenated in append order,
    /// stamped with the group's latest snapshot id — and atomically replace
    /// the file (temp file + rename, both fsync'd). Tables are independent, so
    /// replaying the compacted log rebuilds the same store as the full
    /// history, just in fewer, bigger batches.
    pub fn compact(&mut self) -> io::Result<CompactionReport> {
        let records = self.records()?;
        let records_before = records.len();
        let mut merged: Vec<LogRecord> = Vec::new();
        for record in records {
            match merged
                .iter_mut()
                .find(|m| m.source == record.source && m.table == record.table)
            {
                Some(m) => {
                    m.rows.extend(record.rows);
                    m.snapshot = m.snapshot.max(record.snapshot);
                }
                None => merged.push(record),
            }
        }
        merged.retain(|m| !m.rows.is_empty());
        let tmp_path = self.path.with_extension("wal.tmp");
        let mut tmp = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        tmp.write_all(&MAGIC)?;
        let mut replacement = CommitLog {
            file: tmp,
            path: self.path.clone(),
            fsync: false,
            appends: 0,
        };
        for record in &merged {
            replacement.append(record)?;
        }
        replacement.file.sync_data()?;
        std::fs::rename(&tmp_path, &self.path)?;
        // Swap the handle to the new file, positioned at its end for appends.
        replacement.file.seek(SeekFrom::End(0))?;
        self.file = replacement.file;
        Ok(CompactionReport {
            records_before,
            records_after: merged.len(),
        })
    }
}

/// 32-bit FNV-1a over the payload: tiny, dependency-free, and plenty to catch
/// torn writes and bit rot (this is corruption *detection* for recovery, not
/// an adversarial integrity check).
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

fn encode_payload(record: &LogRecord) -> io::Result<Vec<u8>> {
    let mut out = Vec::new();
    out.extend_from_slice(&record.snapshot.to_le_bytes());
    encode_str(&mut out, &record.source);
    encode_str(&mut out, &record.table);
    out.extend_from_slice(&(record.rows.len() as u32).to_le_bytes());
    for row in &record.rows {
        out.extend_from_slice(&(row.len() as u32).to_le_bytes());
        for value in row {
            encode_value(&mut out, value)?;
        }
    }
    Ok(out)
}

fn encode_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn encode_value(out: &mut Vec<u8>, value: &Value) -> io::Result<()> {
    match value {
        Value::Null => out.push(0x00),
        Value::Bool(b) => {
            out.push(0x01);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(0x02);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(0x03);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(0x04);
            encode_str(out, s);
        }
        other => {
            // Unreachable through the insert path: the schema type checker
            // admits scalars only. Refuse rather than invent an encoding.
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("commit log cannot encode non-scalar value {other:?}"),
            ));
        }
    }
    Ok(())
}

/// Decode the record framed at `offset`. `None` means the tail from `offset`
/// on is not one whole, checksummed, well-formed record — i.e. the torn/corrupt
/// boundary recovery truncates at.
fn read_record(bytes: &[u8], offset: usize) -> Option<(LogRecord, usize)> {
    if offset == bytes.len() {
        return None; // clean end
    }
    let header = bytes.get(offset..offset + 8)?;
    let len = u32::from_le_bytes(header[..4].try_into().ok()?) as usize;
    let checksum = u32::from_le_bytes(header[4..8].try_into().ok()?);
    let payload = bytes.get(offset + 8..offset + 8 + len)?;
    if fnv1a(payload) != checksum {
        return None;
    }
    let record = decode_payload(payload)?;
    Some((record, offset + 8 + len))
}

fn decode_payload(payload: &[u8]) -> Option<LogRecord> {
    let mut cursor = 0usize;
    let snapshot = u64::from_le_bytes(take(payload, &mut cursor, 8)?.try_into().ok()?);
    let source = decode_str(payload, &mut cursor)?;
    let table = decode_str(payload, &mut cursor)?;
    let row_count = decode_u32(payload, &mut cursor)? as usize;
    let mut rows = Vec::with_capacity(row_count.min(payload.len()));
    for _ in 0..row_count {
        let arity = decode_u32(payload, &mut cursor)? as usize;
        let mut row = Vec::with_capacity(arity.min(payload.len()));
        for _ in 0..arity {
            row.push(decode_value(payload, &mut cursor)?);
        }
        rows.push(row);
    }
    if cursor != payload.len() {
        return None; // trailing garbage inside a "valid" frame
    }
    Some(LogRecord {
        snapshot,
        source,
        table,
        rows,
    })
}

fn take<'a>(payload: &'a [u8], cursor: &mut usize, n: usize) -> Option<&'a [u8]> {
    let slice = payload.get(*cursor..*cursor + n)?;
    *cursor += n;
    Some(slice)
}

fn decode_u32(payload: &[u8], cursor: &mut usize) -> Option<u32> {
    Some(u32::from_le_bytes(
        take(payload, cursor, 4)?.try_into().ok()?,
    ))
}

fn decode_str(payload: &[u8], cursor: &mut usize) -> Option<String> {
    let len = decode_u32(payload, cursor)? as usize;
    let bytes = take(payload, cursor, len)?;
    String::from_utf8(bytes.to_vec()).ok()
}

fn decode_value(payload: &[u8], cursor: &mut usize) -> Option<Value> {
    let tag = take(payload, cursor, 1)?[0];
    Some(match tag {
        0x00 => Value::Null,
        0x01 => Value::Bool(take(payload, cursor, 1)?[0] != 0),
        0x02 => Value::Int(i64::from_le_bytes(
            take(payload, cursor, 8)?.try_into().ok()?,
        )),
        0x03 => Value::Float(f64::from_bits(u64::from_le_bytes(
            take(payload, cursor, 8)?.try_into().ok()?,
        ))),
        0x04 => Value::Str(decode_str(payload, cursor)?.into()),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique temp path per test (no tempfile crate in the offline build).
    fn temp_log(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "dataspace-wal-{tag}-{}-{n}.wal",
            std::process::id()
        ))
    }

    fn record(snapshot: SnapshotId, table: &str, ids: &[i64]) -> LogRecord {
        LogRecord {
            snapshot,
            source: "pedro".into(),
            table: table.into(),
            rows: ids
                .iter()
                .map(|&i| {
                    vec![
                        Value::Int(i),
                        Value::str(format!("P{i}")),
                        if i % 2 == 0 {
                            Value::Null
                        } else {
                            Value::Float(i as f64 / 2.0)
                        },
                        Value::Bool(i % 3 == 0),
                    ]
                })
                .collect(),
        }
    }

    #[test]
    fn append_then_reopen_round_trips_every_record() {
        let path = temp_log("roundtrip");
        let records = vec![
            record(1, "protein", &[1, 2, 3]),
            record(2, "gene", &[10]),
            record(3, "protein", &[4]),
            LogRecord {
                snapshot: 4,
                source: "gpmdb".into(),
                table: "empty".into(),
                rows: vec![],
            },
        ];
        {
            let mut opened = CommitLog::open(&path, true).unwrap();
            assert!(opened.records.is_empty());
            for r in &records {
                opened.log.append(r).unwrap();
            }
            assert_eq!(opened.log.appends(), 4);
        }
        let reopened = CommitLog::open(&path, false).unwrap();
        assert_eq!(reopened.records, records);
        assert_eq!(reopened.truncated_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_earlier_records_survive() {
        let path = temp_log("torn");
        {
            let mut opened = CommitLog::open(&path, false).unwrap();
            opened.log.append(&record(1, "protein", &[1])).unwrap();
            opened.log.append(&record(2, "protein", &[2])).unwrap();
        }
        // Simulate a crash mid-append: a frame header promising more payload
        // than was ever written.
        let clean_len = std::fs::metadata(&path).unwrap().len();
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&999u32.to_le_bytes()).unwrap();
            f.write_all(&0u32.to_le_bytes()).unwrap();
            f.write_all(b"partial payload").unwrap();
        }
        let recovered = CommitLog::open(&path, false).unwrap();
        assert_eq!(recovered.records.len(), 2);
        assert_eq!(recovered.records[1].snapshot, 2);
        assert_eq!(recovered.truncated_bytes, 8 + 15);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checksum_cuts_the_log_at_the_bad_record() {
        let path = temp_log("corrupt");
        {
            let mut opened = CommitLog::open(&path, false).unwrap();
            opened.log.append(&record(1, "protein", &[1])).unwrap();
            opened.log.append(&record(2, "protein", &[2])).unwrap();
            opened.log.append(&record(3, "protein", &[3])).unwrap();
        }
        // Flip one payload byte of the second record: it and everything after
        // it are dropped; the first record survives.
        let mut bytes = std::fs::read(&path).unwrap();
        let first_end = {
            let len = u32::from_le_bytes(bytes[MAGIC.len()..MAGIC.len() + 4].try_into().unwrap())
                as usize;
            MAGIC.len() + 8 + len
        };
        bytes[first_end + 12] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let recovered = CommitLog::open(&path, false).unwrap();
        assert_eq!(recovered.records.len(), 1);
        assert_eq!(recovered.records[0].snapshot, 1);
        assert!(recovered.truncated_bytes > 0);
        // A third open finds the truncated log clean.
        let clean = CommitLog::open(&path, false).unwrap();
        assert_eq!(clean.records.len(), 1);
        assert_eq!(clean.truncated_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn appends_continue_after_recovery() {
        let path = temp_log("resume");
        {
            let mut opened = CommitLog::open(&path, false).unwrap();
            opened.log.append(&record(1, "protein", &[1])).unwrap();
        }
        {
            let mut recovered = CommitLog::open(&path, false).unwrap();
            assert_eq!(recovered.records.len(), 1);
            recovered.log.append(&record(2, "protein", &[2])).unwrap();
        }
        let all = CommitLog::open(&path, false).unwrap();
        assert_eq!(
            all.records.iter().map(|r| r.snapshot).collect::<Vec<_>>(),
            vec![1, 2]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_merges_per_table_preserving_row_order() {
        let path = temp_log("compact");
        let mut opened = CommitLog::open(&path, false).unwrap();
        opened.log.append(&record(1, "protein", &[1, 2])).unwrap();
        opened.log.append(&record(2, "gene", &[10])).unwrap();
        opened.log.append(&record(3, "protein", &[3])).unwrap();
        let report = opened.log.compact().unwrap();
        assert_eq!(report.records_before, 3);
        assert_eq!(report.records_after, 2);
        let compacted = opened.log.records().unwrap();
        assert_eq!(compacted.len(), 2);
        assert_eq!(compacted[0].table, "protein");
        assert_eq!(compacted[0].snapshot, 3, "group keeps its latest snapshot");
        let ids: Vec<_> = compacted[0].rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(ids, vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        // The compacted log keeps accepting appends and survives reopen.
        opened.log.append(&record(4, "protein", &[4])).unwrap();
        let reopened = CommitLog::open(&path, false).unwrap();
        assert_eq!(reopened.records.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_log_file_is_rejected() {
        let path = temp_log("badmagic");
        std::fs::write(&path, b"definitely not a commit log").unwrap();
        let err = CommitLog::open(&path, false).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }
}
