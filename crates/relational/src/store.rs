//! An in-memory relational database.

use crate::error::RelError;
use crate::schema::{DataType, RelSchema, RelTable};
use iql::value::{Bag, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// A row of a table: one IQL value per column, in declaration order.
pub type Row = Vec<Value>;

/// An in-memory relational database: a schema plus rows per table.
///
/// Inserts are validated against the schema (arity, types, nullability, primary-key
/// uniqueness). The database also acts as an [`iql::ExtentProvider`] through the
/// wrapper in [`crate::wrapper`], so IQL queries can be evaluated directly against it;
/// computed extents are memoised per scheme (shared `Arc<Bag>` handles) so repeated
/// queries never rebuild or deep-copy an extent.
///
/// The extent memo sits behind an [`RwLock`] (not a `RefCell`), so a shared
/// `&Database` can serve concurrent queries from many threads — the
/// [`iql::ExtentProvider`] `Sync` contract. Inserts (which need `&mut self`)
/// maintain cached extents **incrementally**: the new row's contribution is appended
/// to each affected cached bag (copy-on-write) instead of throwing the bag away, so
/// streaming loads interleaved with queries stay linear instead of quadratic.
/// Every insert also bumps a monotonic version stamp, which is what invalidates any
/// [`iql::PlanCache`] entries whose hash-join indexes baked in the old extents.
#[derive(Debug)]
pub struct Database {
    schema: RelSchema,
    rows: BTreeMap<String, Vec<Row>>,
    extent_cache: RwLock<BTreeMap<String, Arc<Bag>>>,
    version: AtomicU64,
}

impl Clone for Database {
    /// Cloning carries the memoised extents along (shared `Arc` handles, no deep
    /// copy) and the current version stamp.
    fn clone(&self) -> Self {
        Database {
            schema: self.schema.clone(),
            rows: self.rows.clone(),
            extent_cache: RwLock::new(
                self.extent_cache
                    .read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone(),
            ),
            version: AtomicU64::new(self.version.load(Ordering::Relaxed)),
        }
    }
}

impl PartialEq for Database {
    /// Databases compare by schema and contents; the extent cache is derived state.
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows == other.rows
    }
}

/// What an insert does to one cached extent.
enum Delta {
    /// The extent does not cover the inserted row (different table, or a null
    /// column value the extent omits): keep the cached bag as is.
    Unchanged,
    /// The extent gains exactly this element: append it to the cached bag.
    Append(Value),
    /// The key shape is not understood: drop the entry and let it recompute.
    Drop,
}

impl Database {
    /// Create an empty database over the given schema.
    pub fn new(schema: RelSchema) -> Self {
        let rows = schema
            .tables()
            .map(|t| (t.name.clone(), Vec::new()))
            .collect();
        Database {
            schema,
            rows,
            extent_cache: RwLock::new(BTreeMap::new()),
            version: AtomicU64::new(0),
        }
    }

    /// Cached extent for a scheme key, if previously computed.
    pub(crate) fn cached_extent(&self, scheme_key: &str) -> Option<Arc<Bag>> {
        self.extent_cache
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(scheme_key)
            .cloned()
    }

    /// Memoise a computed extent.
    pub(crate) fn store_extent(&self, scheme_key: String, bag: Arc<Bag>) {
        self.extent_cache
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(scheme_key, bag);
    }

    /// The database's data version: bumped on every mutation, so plan caches keyed
    /// on [`iql::ExtentProvider::version`] invalidate (see [`iql::PlanCache`]).
    pub fn data_version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Plan the incremental extent maintenance for inserting `row` into `table`:
    /// for each cached key, the element to append (`Some`) or a drop marker
    /// (`None`). Computed *before* the row is moved into storage so the insert
    /// path clones neither the row nor the table metadata.
    fn extent_deltas(&self, table: &RelTable, row: &Row) -> Vec<(String, Option<Value>)> {
        let cache = self
            .extent_cache
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        cache
            .keys()
            .filter_map(|key| match extent_insert_delta(key, table, row) {
                Delta::Unchanged => None,
                Delta::Append(value) => Some((key.clone(), Some(value))),
                Delta::Drop => Some((key.clone(), None)),
            })
            .collect()
    }

    /// Apply planned deltas: append the row's contribution to each cached bag
    /// (copy-on-write — O(delta) when the bag is unshared, one copy when a reader
    /// still holds the old handle) instead of invalidating per table. Keys whose
    /// shape was not understood are dropped and recompute lazily.
    fn apply_extent_deltas(&mut self, deltas: Vec<(String, Option<Value>)>) {
        if deltas.is_empty() {
            return;
        }
        let cache = self
            .extent_cache
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner);
        for (key, delta) in deltas {
            match delta {
                Some(value) => {
                    if let Some(bag) = cache.get_mut(&key) {
                        Arc::make_mut(bag).push(value);
                    }
                }
                None => {
                    cache.remove(&key);
                }
            }
        }
    }

    /// The database's schema.
    pub fn schema(&self) -> &RelSchema {
        &self.schema
    }

    /// The data source name (same as the schema name).
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Insert a row into a table, validating arity, types, nullability and key
    /// uniqueness.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<(), RelError> {
        let t = self
            .schema
            .table(table)
            .ok_or_else(|| RelError::UnknownTable(table.to_string()))?;
        if row.len() != t.columns.len() {
            return Err(RelError::ArityMismatch {
                table: table.to_string(),
                expected: t.columns.len(),
                found: row.len(),
            });
        }
        for (col, val) in t.columns.iter().zip(row.iter()) {
            check_type(t, col.name.as_str(), col.data_type, col.nullable, val)?;
        }
        if !t.primary_key.is_empty() {
            let key = key_of(t, &row);
            if self
                .rows
                .get(table)
                .map(|rows| rows.iter().any(|r| key_of(t, r) == key))
                .unwrap_or(false)
            {
                return Err(RelError::DuplicateKey {
                    table: table.to_string(),
                    key: format!("{key:?}"),
                });
            }
        }
        let deltas = self.extent_deltas(t, &row);
        self.rows.entry(table.to_string()).or_default().push(row);
        self.apply_extent_deltas(deltas);
        self.version.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Insert many rows, stopping at the first error.
    pub fn insert_many(&mut self, table: &str, rows: Vec<Row>) -> Result<(), RelError> {
        for row in rows {
            self.insert(table, row)?;
        }
        Ok(())
    }

    /// All rows of a table (empty if the table has no rows or does not exist).
    pub fn rows(&self, table: &str) -> &[Row] {
        self.rows.get(table).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of rows in a table.
    pub fn row_count(&self, table: &str) -> usize {
        self.rows(table).len()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.rows.values().map(Vec::len).sum()
    }

    /// Project a single column of a table as a vector of values.
    pub fn column_values(&self, table: &str, column: &str) -> Result<Vec<Value>, RelError> {
        let t = self
            .schema
            .table(table)
            .ok_or_else(|| RelError::UnknownTable(table.to_string()))?;
        let idx = t
            .column_index(column)
            .ok_or_else(|| RelError::UnknownColumn {
                table: table.to_string(),
                column: column.to_string(),
            })?;
        Ok(self.rows(table).iter().map(|r| r[idx].clone()).collect())
    }

    /// The primary-key value of each row of a table. Single-column keys produce the
    /// bare value; composite keys produce a tuple.
    pub fn key_values(&self, table: &str) -> Result<Vec<Value>, RelError> {
        let t = self
            .schema
            .table(table)
            .ok_or_else(|| RelError::UnknownTable(table.to_string()))?;
        Ok(self.rows(table).iter().map(|r| key_of(t, r)).collect())
    }

    /// Find the rows of a table whose primary key equals `key`.
    pub fn find_by_key(&self, table: &str, key: &Value) -> Vec<&Row> {
        match self.schema.table(table) {
            Some(t) => self
                .rows(table)
                .iter()
                .filter(|r| &key_of(t, r) == key)
                .collect(),
            None => Vec::new(),
        }
    }
}

/// The contribution one inserted row makes to the cached extent stored under
/// `key`, mirroring the wrapper conventions of [`crate::wrapper::extent_of`]:
/// a table scheme gains the row's primary-key value, a column scheme gains a
/// `{key, value}` pair (nothing when the column value is null), schemes over other
/// tables are untouched, and fully-qualified `sql,…` keys are stripped and retried.
fn extent_insert_delta(key: &str, table: &RelTable, row: &Row) -> Delta {
    let parts: Vec<&str> = key.split(',').collect();
    delta_for_parts(&parts, table, row)
}

fn delta_for_parts(parts: &[&str], table: &RelTable, row: &Row) -> Delta {
    match parts {
        [t] => {
            if *t == table.name {
                Delta::Append(key_of(table, row))
            } else {
                Delta::Unchanged
            }
        }
        [t, column] => {
            if *t != table.name {
                return Delta::Unchanged;
            }
            let Some(idx) = table.column_index(column) else {
                // A two-part key naming this table but no known column: not an
                // extent shape we can maintain — recompute lazily.
                return Delta::Drop;
            };
            let value = &row[idx];
            if matches!(value, Value::Null) {
                Delta::Unchanged
            } else {
                Delta::Append(Value::pair(key_of(table, row), value.clone()))
            }
        }
        ["sql", _construct, rest @ ..] if !rest.is_empty() => delta_for_parts(rest, table, row),
        _ => Delta::Drop,
    }
}

/// Compute the primary-key value of a row: the key column's value, or a tuple of them
/// for composite keys, or the whole row when the table declares no key.
pub fn key_of(table: &RelTable, row: &Row) -> Value {
    if table.primary_key.is_empty() {
        return Value::tuple(row.clone());
    }
    let mut parts = Vec::with_capacity(table.primary_key.len());
    for k in &table.primary_key {
        let idx = table.column_index(k).expect("validated key column");
        parts.push(row[idx].clone());
    }
    if parts.len() == 1 {
        parts.pop().expect("one element")
    } else {
        Value::tuple(parts)
    }
}

fn check_type(
    table: &RelTable,
    column: &str,
    expected: DataType,
    nullable: bool,
    value: &Value,
) -> Result<(), RelError> {
    let ok = match (expected, value) {
        (_, Value::Null) => {
            if nullable {
                true
            } else {
                return Err(RelError::NullViolation {
                    table: table.name.clone(),
                    column: column.to_string(),
                });
            }
        }
        (DataType::Int, Value::Int(_)) => true,
        (DataType::Float, Value::Float(_)) | (DataType::Float, Value::Int(_)) => true,
        (DataType::Text, Value::Str(_)) => true,
        (DataType::Bool, Value::Bool(_)) => true,
        _ => false,
    };
    if ok {
        Ok(())
    } else {
        Err(RelError::TypeMismatch {
            table: table.name.clone(),
            column: column.to_string(),
            expected: expected.to_string(),
            found: value.type_name().to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{RelColumn, RelTable};

    fn schema() -> RelSchema {
        let mut s = RelSchema::new("pedro");
        s.add_table(
            RelTable::new("protein")
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("accession_num", DataType::Text))
                .with_column(RelColumn::nullable("organism", DataType::Text))
                .with_primary_key(["id"]),
        )
        .unwrap();
        s.add_table(
            RelTable::new("link")
                .with_column(RelColumn::new("a", DataType::Int))
                .with_column(RelColumn::new("b", DataType::Int))
                .with_primary_key(["a", "b"]),
        )
        .unwrap();
        s
    }

    #[test]
    fn insert_and_project() {
        let mut db = Database::new(schema());
        db.insert("protein", vec![1.into(), "P100".into(), "human".into()])
            .unwrap();
        db.insert("protein", vec![2.into(), "P200".into(), Value::Null])
            .unwrap();
        assert_eq!(db.row_count("protein"), 2);
        assert_eq!(
            db.column_values("protein", "accession_num").unwrap(),
            vec![Value::str("P100"), Value::str("P200")]
        );
        assert_eq!(
            db.key_values("protein").unwrap(),
            vec![Value::Int(1), Value::Int(2)]
        );
    }

    #[test]
    fn arity_and_type_checks() {
        let mut db = Database::new(schema());
        assert!(matches!(
            db.insert("protein", vec![1.into()]),
            Err(RelError::ArityMismatch { .. })
        ));
        assert!(matches!(
            db.insert("protein", vec!["x".into(), "P1".into(), Value::Null]),
            Err(RelError::TypeMismatch { .. })
        ));
        assert!(matches!(
            db.insert("protein", vec![1.into(), Value::Null, Value::Null]),
            Err(RelError::NullViolation { .. })
        ));
        assert!(matches!(
            db.insert("missing", vec![]),
            Err(RelError::UnknownTable(_))
        ));
    }

    #[test]
    fn primary_key_uniqueness_enforced() {
        let mut db = Database::new(schema());
        db.insert("protein", vec![1.into(), "P100".into(), Value::Null])
            .unwrap();
        assert!(matches!(
            db.insert("protein", vec![1.into(), "P999".into(), Value::Null]),
            Err(RelError::DuplicateKey { .. })
        ));
    }

    #[test]
    fn composite_keys_are_tuples() {
        let mut db = Database::new(schema());
        db.insert("link", vec![1.into(), 2.into()]).unwrap();
        db.insert("link", vec![1.into(), 3.into()]).unwrap();
        assert!(matches!(
            db.insert("link", vec![1.into(), 2.into()]),
            Err(RelError::DuplicateKey { .. })
        ));
        let keys = db.key_values("link").unwrap();
        assert_eq!(keys[0], Value::tuple(vec![Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn find_by_key() {
        let mut db = Database::new(schema());
        db.insert("protein", vec![7.into(), "P700".into(), Value::Null])
            .unwrap();
        let found = db.find_by_key("protein", &Value::Int(7));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0][1], Value::str("P700"));
        assert!(db.find_by_key("protein", &Value::Int(8)).is_empty());
    }

    #[test]
    fn insert_appends_to_cached_extents_instead_of_recomputing() {
        let mut db = Database::new(schema());
        db.insert("protein", vec![1.into(), "P100".into(), "human".into()])
            .unwrap();
        // Prime the cache with a doctored sentinel bag: if an insert recomputed the
        // extent the sentinel would vanish; incremental maintenance appends to it.
        let sentinel = Value::str("sentinel");
        db.store_extent(
            "protein".into(),
            Arc::new(Bag::from_values(vec![sentinel.clone()])),
        );
        db.store_extent(
            "protein,accession_num".into(),
            Arc::new(Bag::from_values(vec![sentinel.clone()])),
        );
        db.insert("protein", vec![2.into(), "P200".into(), Value::Null])
            .unwrap();
        let table_bag = db.cached_extent("protein").unwrap();
        assert_eq!(
            table_bag.items(),
            &[sentinel.clone(), Value::Int(2)],
            "table extent must gain the new key by append"
        );
        let col_bag = db.cached_extent("protein,accession_num").unwrap();
        assert_eq!(
            col_bag.items(),
            &[
                sentinel.clone(),
                Value::pair(Value::Int(2), Value::str("P200"))
            ]
        );
    }

    #[test]
    fn null_column_values_leave_cached_column_extent_unchanged() {
        let mut db = Database::new(schema());
        let sentinel = Value::str("sentinel");
        db.store_extent(
            "protein,organism".into(),
            Arc::new(Bag::from_values(vec![sentinel.clone()])),
        );
        db.insert("protein", vec![1.into(), "P100".into(), Value::Null])
            .unwrap();
        assert_eq!(
            db.cached_extent("protein,organism").unwrap().items(),
            &[sentinel],
            "null organism contributes nothing to the column extent"
        );
    }

    #[test]
    fn insert_into_other_table_leaves_cached_extents_alone() {
        let mut db = Database::new(schema());
        let sentinel = Value::str("sentinel");
        db.store_extent(
            "protein".into(),
            Arc::new(Bag::from_values(vec![sentinel.clone()])),
        );
        db.insert("link", vec![1.into(), 2.into()]).unwrap();
        assert_eq!(db.cached_extent("protein").unwrap().items(), &[sentinel]);
    }

    #[test]
    fn fully_qualified_cached_keys_are_maintained_too() {
        let mut db = Database::new(schema());
        let sentinel = Value::str("sentinel");
        db.store_extent(
            "sql,table,protein".into(),
            Arc::new(Bag::from_values(vec![sentinel.clone()])),
        );
        db.insert("protein", vec![3.into(), "P300".into(), Value::Null])
            .unwrap();
        assert_eq!(
            db.cached_extent("sql,table,protein").unwrap().items(),
            &[sentinel, Value::Int(3)]
        );
    }

    #[test]
    fn unknown_cached_key_shapes_are_dropped_on_insert() {
        let mut db = Database::new(schema());
        db.store_extent(
            "protein,no_such_column".into(),
            Arc::new(Bag::from_values(vec![Value::Int(0)])),
        );
        db.insert("protein", vec![1.into(), "P100".into(), Value::Null])
            .unwrap();
        assert!(db.cached_extent("protein,no_such_column").is_none());
    }

    #[test]
    fn version_bumps_on_every_insert() {
        let mut db = Database::new(schema());
        let v0 = db.data_version();
        db.insert("protein", vec![1.into(), "P100".into(), Value::Null])
            .unwrap();
        db.insert("protein", vec![2.into(), "P200".into(), Value::Null])
            .unwrap();
        assert_eq!(db.data_version(), v0 + 2);
        // Failed inserts mutate nothing and must not bump the version.
        let v2 = db.data_version();
        assert!(db
            .insert("protein", vec![1.into(), "P999".into(), Value::Null])
            .is_err());
        assert_eq!(db.data_version(), v2);
    }

    #[test]
    fn streaming_load_keeps_cached_extent_coherent() {
        // Prime the extent once, then stream many inserts: the cached bag must
        // track the table exactly (this is the incremental-maintenance path — the
        // seed behaviour recomputed the extent from scratch on every access).
        let mut db = Database::new(schema());
        db.insert("protein", vec![0.into(), "P0".into(), Value::Null])
            .unwrap();
        use iql::eval::ExtentProvider;
        use iql::SchemeRef;
        let _ = db.extent(&SchemeRef::table("protein")).unwrap();
        for i in 1..200i64 {
            db.insert(
                "protein",
                vec![i.into(), format!("P{i}").into(), Value::Null],
            )
            .unwrap();
        }
        let cached = db.extent(&SchemeRef::table("protein")).unwrap();
        assert_eq!(cached.len(), 200);
        assert_eq!(
            cached.items(),
            crate::wrapper::extent_of(&db, &SchemeRef::table("protein"))
                .unwrap()
                .items(),
            "incrementally maintained extent equals a fresh recompute"
        );
    }

    #[test]
    fn float_column_accepts_ints() {
        let mut s = RelSchema::new("x");
        s.add_table(
            RelTable::new("m")
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("score", DataType::Float))
                .with_primary_key(["id"]),
        )
        .unwrap();
        let mut db = Database::new(s);
        assert!(db.insert("m", vec![1.into(), 5.into()]).is_ok());
        assert!(db.insert("m", vec![2.into(), Value::Float(5.5)]).is_ok());
    }
}
