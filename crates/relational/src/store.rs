//! An in-memory relational database.

use crate::error::RelError;
use crate::schema::{DataType, RelSchema, RelTable};
use crate::storage::{BatchCommit, Snapshot, SnapshotId, StorageEngine};
use iql::value::{Bag, Value};
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// A row of a table: one IQL value per column, in declaration order.
pub type Row = Vec<Value>;

/// The extent-level contribution one insert (or one batch of inserts) made,
/// reported by [`Database::insert_with_delta`] / [`Database::insert_many_with_delta`]
/// so downstream consumers (standing-query fan-out, cache maintenance) can see
/// *what* changed without diffing extents.
///
/// Keys follow the wrapper's canonical short form (`"t"` for the table scheme,
/// `"t,c"` per column scheme); every appended element is listed in insert
/// order, exactly as it lands at the tail of the corresponding extent. Columns
/// whose inserted values were all null contribute no entry (the paper's extents
/// list only present values).
#[derive(Debug, Clone, PartialEq)]
pub struct TableDelta {
    /// The table the rows went into.
    pub table: String,
    /// Scheme key → elements appended to that scheme's extent, in insert order.
    pub appended: BTreeMap<String, Vec<Value>>,
}

impl TableDelta {
    fn new(table: &str) -> Self {
        TableDelta {
            table: table.to_string(),
            appended: BTreeMap::new(),
        }
    }

    /// Record one row's contributions, mirroring [`crate::wrapper::extent_of`]:
    /// the table scheme gains the primary-key value, each column scheme gains a
    /// `{key, value}` pair unless the value is null.
    fn push_row(&mut self, table: &RelTable, row: &Row) {
        let key = key_of(table, row);
        self.appended
            .entry(table.name.clone())
            .or_default()
            .push(key.clone());
        for (idx, col) in table.columns.iter().enumerate() {
            if matches!(row[idx], Value::Null) {
                continue;
            }
            self.appended
                .entry(format!("{},{}", table.name, col.name))
                .or_default()
                .push(Value::pair(key.clone(), row[idx].clone()));
        }
    }
}

/// An in-memory relational database: a schema plus rows per table.
///
/// Inserts are validated against the schema (arity, types, nullability, primary-key
/// uniqueness). The database also acts as an [`iql::ExtentProvider`] through the
/// wrapper in [`crate::wrapper`], so IQL queries can be evaluated directly against it;
/// computed extents are memoised per scheme (shared `Arc<Bag>` handles) so repeated
/// queries never rebuild or deep-copy an extent.
///
/// The extent memo sits behind an [`RwLock`] (not a `RefCell`), so a shared
/// `&Database` can serve concurrent queries from many threads — the
/// [`iql::ExtentProvider`] `Sync` contract. Inserts (which need `&mut self`)
/// maintain cached extents **incrementally**: the new row's contribution is appended
/// to each affected cached bag (copy-on-write) instead of throwing the bag away, so
/// streaming loads interleaved with queries stay linear instead of quadratic.
/// Every insert also bumps a monotonic version stamp, which is what invalidates any
/// [`iql::PlanCache`] entries whose hash-join indexes baked in the old extents.
#[derive(Debug)]
pub struct Database {
    schema: RelSchema,
    rows: BTreeMap<String, Vec<Row>>,
    /// Per-table MVCC stamps, parallel to `rows`: `row_stamps[t][i]` is the
    /// [`SnapshotId`] of the commit that appended `rows[t][i]`. The store is
    /// append-only and commits are monotone, so each vector is non-decreasing
    /// and the rows visible at any snapshot are a stable prefix
    /// ([`StorageEngine::visible_rows`]).
    row_stamps: BTreeMap<String, Vec<SnapshotId>>,
    extent_cache: RwLock<BTreeMap<String, Arc<Bag>>>,
    /// Per-table primary-key sets, seeded lazily from the existing rows on a
    /// table's first keyed insert and maintained on every later one. The store
    /// is append-only, so once seeded a set never goes stale — uniqueness
    /// checks are O(batch), not O(table).
    pk_index: BTreeMap<String, HashSet<Value>>,
    /// The current snapshot id: 0 for the empty store, advanced by exactly one
    /// per committed non-empty batch. Doubles as the provider version stamp.
    version: AtomicU64,
    /// Live [`Snapshot`] pins handed out by [`StorageEngine::begin_snapshot`].
    active_snapshots: Arc<AtomicUsize>,
}

impl Clone for Database {
    /// Cloning carries the memoised extents along (shared `Arc` handles, no deep
    /// copy) and the current version stamp.
    fn clone(&self) -> Self {
        Database {
            schema: self.schema.clone(),
            rows: self.rows.clone(),
            row_stamps: self.row_stamps.clone(),
            extent_cache: RwLock::new(
                self.extent_cache
                    .read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone(),
            ),
            pk_index: self.pk_index.clone(),
            version: AtomicU64::new(self.version.load(Ordering::Relaxed)),
            // Snapshot pins are per-engine liveness tokens, not data: pins on
            // the original must not count against (or keep alive reads on) the
            // clone, so the clone starts with zero active snapshots.
            active_snapshots: Arc::new(AtomicUsize::new(0)),
        }
    }
}

impl PartialEq for Database {
    /// Databases compare by schema and contents; the extent cache is derived state.
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows == other.rows
    }
}

/// What an insert does to one cached extent.
enum Delta {
    /// The extent does not cover the inserted row (different table, or a null
    /// column value the extent omits): keep the cached bag as is.
    Unchanged,
    /// The extent gains exactly this element: append it to the cached bag.
    Append(Value),
    /// The key shape is not understood: drop the entry and let it recompute.
    Drop,
}

impl Database {
    /// Create an empty database over the given schema.
    pub fn new(schema: RelSchema) -> Self {
        let rows: BTreeMap<String, Vec<Row>> = schema
            .tables()
            .map(|t| (t.name.clone(), Vec::new()))
            .collect();
        let row_stamps = rows.keys().map(|t| (t.clone(), Vec::new())).collect();
        Database {
            schema,
            rows,
            row_stamps,
            extent_cache: RwLock::new(BTreeMap::new()),
            pk_index: BTreeMap::new(),
            version: AtomicU64::new(0),
            active_snapshots: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Cached extent for a scheme key, if previously computed.
    pub(crate) fn cached_extent(&self, scheme_key: &str) -> Option<Arc<Bag>> {
        self.extent_cache
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(scheme_key)
            .cloned()
    }

    /// Memoise a computed extent.
    pub(crate) fn store_extent(&self, scheme_key: String, bag: Arc<Bag>) {
        self.extent_cache
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(scheme_key, bag);
    }

    /// The database's data version: bumped on every mutation, so plan caches keyed
    /// on [`iql::ExtentProvider::version`] invalidate (see [`iql::PlanCache`]).
    pub fn data_version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Plan the incremental extent maintenance for inserting `row` into `table`:
    /// for each cached key, the element to append (`Some`) or a drop marker
    /// (`None`). Computed *before* the row is moved into storage so the insert
    /// path clones neither the row nor the table metadata.
    fn extent_deltas(&self, table: &RelTable, row: &Row) -> Vec<(String, Option<Value>)> {
        let cache = self
            .extent_cache
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        cache
            .keys()
            .filter_map(|key| match extent_insert_delta(key, table, row) {
                Delta::Unchanged => None,
                Delta::Append(value) => Some((key.clone(), Some(value))),
                Delta::Drop => Some((key.clone(), None)),
            })
            .collect()
    }

    /// Apply planned deltas: append the row's contribution to each cached bag
    /// (copy-on-write — O(delta) when the bag is unshared, one copy when a reader
    /// still holds the old handle) instead of invalidating per table. Keys whose
    /// shape was not understood are dropped and recompute lazily.
    fn apply_extent_deltas(&mut self, deltas: Vec<(String, Option<Value>)>) {
        if deltas.is_empty() {
            return;
        }
        let cache = self
            .extent_cache
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner);
        for (key, delta) in deltas {
            match delta {
                Some(value) => {
                    if let Some(bag) = cache.get_mut(&key) {
                        Arc::make_mut(bag).push(value);
                    }
                }
                None => {
                    cache.remove(&key);
                }
            }
        }
    }

    /// The database's schema.
    pub fn schema(&self) -> &RelSchema {
        &self.schema
    }

    /// The data source name (same as the schema name).
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Insert a row into a table, validating arity, types, nullability and key
    /// uniqueness.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<(), RelError> {
        self.insert_with_delta(table, row).map(drop)
    }

    /// Insert a row and report the [`TableDelta`] it appended to the table's
    /// extents — the fan-out hook standing-query maintenance consumes. Bumps
    /// the data version by exactly one.
    pub fn insert_with_delta(&mut self, table: &str, row: Row) -> Result<TableDelta, RelError> {
        self.insert_many_with_delta(table, vec![row])
    }

    /// Insert many rows as **one batch**: all rows are validated up front (on
    /// any error nothing is inserted), the primary-key uniqueness check uses a
    /// hash set over existing + in-batch keys (O(N + M), not O(N·M) rescans),
    /// cached extents gain the whole batch's contributions in one append round,
    /// and the data version bumps **once per call** — so downstream
    /// version-guarded machinery (plan caches, point-lookup indexes, key
    /// histograms) pays one invalidation/refresh round per bulk load instead of
    /// one per row.
    pub fn insert_many(&mut self, table: &str, rows: Vec<Row>) -> Result<(), RelError> {
        self.insert_many_with_delta(table, rows).map(drop)
    }

    /// Batched insert reporting the combined [`TableDelta`] (see
    /// [`Database::insert_many`] for the batch semantics). An empty batch is a
    /// no-op: nothing is appended and the version does not move.
    pub fn insert_many_with_delta(
        &mut self,
        table: &str,
        rows: Vec<Row>,
    ) -> Result<TableDelta, RelError> {
        self.commit_batch_inner(table, rows).map(|c| c.delta)
    }

    /// The commit path shared by [`Database::insert_many_with_delta`] and the
    /// [`StorageEngine`] impl: validate the whole batch, apply it, stamp every
    /// appended row with the new snapshot id, and report the pre/post snapshot
    /// pair **from inside the critical section** (`&mut self` spans the whole
    /// commit, so no concurrent writer can move the stamp between the
    /// pre-read and the apply).
    fn commit_batch_inner(&mut self, table: &str, rows: Vec<Row>) -> Result<BatchCommit, RelError> {
        let pre_snapshot = self.version.load(Ordering::Acquire);
        let t = self
            .schema
            .table(table)
            .ok_or_else(|| RelError::UnknownTable(table.to_string()))?;
        let mut delta = TableDelta::new(table);
        if rows.is_empty() {
            return Ok(BatchCommit {
                delta,
                pre_snapshot,
                post_snapshot: pre_snapshot,
            });
        }
        // Validate the whole batch before mutating anything (all-or-nothing).
        for row in &rows {
            if row.len() != t.columns.len() {
                return Err(RelError::ArityMismatch {
                    table: table.to_string(),
                    expected: t.columns.len(),
                    found: row.len(),
                });
            }
            for (col, val) in t.columns.iter().zip(row.iter()) {
                check_type(t, col.name.as_str(), col.data_type, col.nullable, val)?;
            }
        }
        if !t.primary_key.is_empty() {
            // The persistent key set makes the uniqueness check O(batch): it
            // seeds from the existing rows once per table (first keyed insert)
            // and is maintained incrementally forever after — the store is
            // append-only, so it never goes stale. The batch validates against
            // a side set first so a mid-batch duplicate leaves it untouched.
            let seen = self.pk_index.entry(table.to_string()).or_insert_with(|| {
                self.rows
                    .get(table)
                    .map(|existing| existing.iter().map(|r| key_of(t, r)).collect())
                    .unwrap_or_default()
            });
            let mut fresh: HashSet<Value> = HashSet::with_capacity(rows.len());
            for row in &rows {
                let key = key_of(t, row);
                if seen.contains(&key) || !fresh.insert(key.clone()) {
                    return Err(RelError::DuplicateKey {
                        table: table.to_string(),
                        key: format!("{key:?}"),
                    });
                }
            }
            seen.extend(fresh);
        }
        // One cache-delta round and one snapshot advance for the whole batch.
        let mut cache_deltas = Vec::new();
        for row in &rows {
            cache_deltas.extend(self.extent_deltas(t, row));
            delta.push_row(t, row);
        }
        let post_snapshot = pre_snapshot + 1;
        let appended = rows.len();
        self.rows.entry(table.to_string()).or_default().extend(rows);
        self.row_stamps
            .entry(table.to_string())
            .or_default()
            .extend(std::iter::repeat_n(post_snapshot, appended));
        self.apply_extent_deltas(cache_deltas);
        self.version.store(post_snapshot, Ordering::Release);
        Ok(BatchCommit {
            delta,
            pre_snapshot,
            post_snapshot,
        })
    }

    /// All rows of a table (empty if the table has no rows or does not exist).
    pub fn rows(&self, table: &str) -> &[Row] {
        self.rows.get(table).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of rows in a table.
    pub fn row_count(&self, table: &str) -> usize {
        self.rows(table).len()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.rows.values().map(Vec::len).sum()
    }

    /// Project a single column of a table as a vector of values.
    pub fn column_values(&self, table: &str, column: &str) -> Result<Vec<Value>, RelError> {
        let t = self
            .schema
            .table(table)
            .ok_or_else(|| RelError::UnknownTable(table.to_string()))?;
        let idx = t
            .column_index(column)
            .ok_or_else(|| RelError::UnknownColumn {
                table: table.to_string(),
                column: column.to_string(),
            })?;
        Ok(self.rows(table).iter().map(|r| r[idx].clone()).collect())
    }

    /// The primary-key value of each row of a table. Single-column keys produce the
    /// bare value; composite keys produce a tuple.
    pub fn key_values(&self, table: &str) -> Result<Vec<Value>, RelError> {
        let t = self
            .schema
            .table(table)
            .ok_or_else(|| RelError::UnknownTable(table.to_string()))?;
        Ok(self.rows(table).iter().map(|r| key_of(t, r)).collect())
    }

    /// Find the rows of a table whose primary key equals `key`.
    pub fn find_by_key(&self, table: &str, key: &Value) -> Vec<&Row> {
        match self.schema.table(table) {
            Some(t) => self
                .rows(table)
                .iter()
                .filter(|r| &key_of(t, r) == key)
                .collect(),
            None => Vec::new(),
        }
    }
}

impl StorageEngine for Database {
    fn schema(&self) -> &RelSchema {
        Database::schema(self)
    }

    /// The current snapshot id *is* the data version: both advance by exactly
    /// one per committed non-empty batch.
    fn current_snapshot(&self) -> SnapshotId {
        self.data_version()
    }

    fn begin_snapshot(&self) -> Snapshot {
        Snapshot::pin(self.data_version(), Arc::clone(&self.active_snapshots))
    }

    fn snapshots_active(&self) -> usize {
        self.active_snapshots.load(Ordering::Acquire)
    }

    fn commit_batch(&mut self, table: &str, rows: Vec<Row>) -> Result<BatchCommit, RelError> {
        self.commit_batch_inner(table, rows)
    }

    /// The stable prefix of `table` visible at `snapshot`. Stamps are
    /// non-decreasing (commits are monotone and only ever append), so the
    /// boundary is a binary search, not a scan.
    fn visible_rows(&self, table: &str, snapshot: SnapshotId) -> &[Row] {
        let rows = self.rows.get(table).map(Vec::as_slice).unwrap_or(&[]);
        let stamps = self.row_stamps.get(table).map(Vec::as_slice).unwrap_or(&[]);
        let visible = stamps.partition_point(|&s| s <= snapshot).min(rows.len());
        &rows[..visible]
    }
}

/// The contribution one inserted row makes to the cached extent stored under
/// `key`, mirroring the wrapper conventions of [`crate::wrapper::extent_of`]:
/// a table scheme gains the row's primary-key value, a column scheme gains a
/// `{key, value}` pair (nothing when the column value is null), schemes over other
/// tables are untouched, and fully-qualified `sql,…` keys are stripped and retried.
fn extent_insert_delta(key: &str, table: &RelTable, row: &Row) -> Delta {
    let parts: Vec<&str> = key.split(',').collect();
    delta_for_parts(&parts, table, row)
}

fn delta_for_parts(parts: &[&str], table: &RelTable, row: &Row) -> Delta {
    match parts {
        [t] => {
            if *t == table.name {
                Delta::Append(key_of(table, row))
            } else {
                Delta::Unchanged
            }
        }
        [t, column] => {
            if *t != table.name {
                return Delta::Unchanged;
            }
            let Some(idx) = table.column_index(column) else {
                // A two-part key naming this table but no known column: not an
                // extent shape we can maintain — recompute lazily.
                return Delta::Drop;
            };
            let value = &row[idx];
            if matches!(value, Value::Null) {
                Delta::Unchanged
            } else {
                Delta::Append(Value::pair(key_of(table, row), value.clone()))
            }
        }
        ["sql", _construct, rest @ ..] if !rest.is_empty() => delta_for_parts(rest, table, row),
        _ => Delta::Drop,
    }
}

/// Compute the primary-key value of a row: the key column's value, or a tuple of them
/// for composite keys, or the whole row when the table declares no key.
pub fn key_of(table: &RelTable, row: &Row) -> Value {
    if table.primary_key.is_empty() {
        return Value::tuple(row.clone());
    }
    let mut parts = Vec::with_capacity(table.primary_key.len());
    for k in &table.primary_key {
        let idx = table.column_index(k).expect("validated key column");
        parts.push(row[idx].clone());
    }
    if parts.len() == 1 {
        parts.pop().expect("one element")
    } else {
        Value::tuple(parts)
    }
}

fn check_type(
    table: &RelTable,
    column: &str,
    expected: DataType,
    nullable: bool,
    value: &Value,
) -> Result<(), RelError> {
    let ok = match (expected, value) {
        (_, Value::Null) => {
            if nullable {
                true
            } else {
                return Err(RelError::NullViolation {
                    table: table.name.clone(),
                    column: column.to_string(),
                });
            }
        }
        (DataType::Int, Value::Int(_)) => true,
        (DataType::Float, Value::Float(_)) | (DataType::Float, Value::Int(_)) => true,
        (DataType::Text, Value::Str(_)) => true,
        (DataType::Bool, Value::Bool(_)) => true,
        _ => false,
    };
    if ok {
        Ok(())
    } else {
        Err(RelError::TypeMismatch {
            table: table.name.clone(),
            column: column.to_string(),
            expected: expected.to_string(),
            found: value.type_name().to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{RelColumn, RelTable};

    fn schema() -> RelSchema {
        let mut s = RelSchema::new("pedro");
        s.add_table(
            RelTable::new("protein")
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("accession_num", DataType::Text))
                .with_column(RelColumn::nullable("organism", DataType::Text))
                .with_primary_key(["id"]),
        )
        .unwrap();
        s.add_table(
            RelTable::new("link")
                .with_column(RelColumn::new("a", DataType::Int))
                .with_column(RelColumn::new("b", DataType::Int))
                .with_primary_key(["a", "b"]),
        )
        .unwrap();
        s
    }

    #[test]
    fn insert_and_project() {
        let mut db = Database::new(schema());
        db.insert("protein", vec![1.into(), "P100".into(), "human".into()])
            .unwrap();
        db.insert("protein", vec![2.into(), "P200".into(), Value::Null])
            .unwrap();
        assert_eq!(db.row_count("protein"), 2);
        assert_eq!(
            db.column_values("protein", "accession_num").unwrap(),
            vec![Value::str("P100"), Value::str("P200")]
        );
        assert_eq!(
            db.key_values("protein").unwrap(),
            vec![Value::Int(1), Value::Int(2)]
        );
    }

    #[test]
    fn arity_and_type_checks() {
        let mut db = Database::new(schema());
        assert!(matches!(
            db.insert("protein", vec![1.into()]),
            Err(RelError::ArityMismatch { .. })
        ));
        assert!(matches!(
            db.insert("protein", vec!["x".into(), "P1".into(), Value::Null]),
            Err(RelError::TypeMismatch { .. })
        ));
        assert!(matches!(
            db.insert("protein", vec![1.into(), Value::Null, Value::Null]),
            Err(RelError::NullViolation { .. })
        ));
        assert!(matches!(
            db.insert("missing", vec![]),
            Err(RelError::UnknownTable(_))
        ));
    }

    #[test]
    fn primary_key_uniqueness_enforced() {
        let mut db = Database::new(schema());
        db.insert("protein", vec![1.into(), "P100".into(), Value::Null])
            .unwrap();
        assert!(matches!(
            db.insert("protein", vec![1.into(), "P999".into(), Value::Null]),
            Err(RelError::DuplicateKey { .. })
        ));
    }

    #[test]
    fn composite_keys_are_tuples() {
        let mut db = Database::new(schema());
        db.insert("link", vec![1.into(), 2.into()]).unwrap();
        db.insert("link", vec![1.into(), 3.into()]).unwrap();
        assert!(matches!(
            db.insert("link", vec![1.into(), 2.into()]),
            Err(RelError::DuplicateKey { .. })
        ));
        let keys = db.key_values("link").unwrap();
        assert_eq!(keys[0], Value::tuple(vec![Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn find_by_key() {
        let mut db = Database::new(schema());
        db.insert("protein", vec![7.into(), "P700".into(), Value::Null])
            .unwrap();
        let found = db.find_by_key("protein", &Value::Int(7));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0][1], Value::str("P700"));
        assert!(db.find_by_key("protein", &Value::Int(8)).is_empty());
    }

    #[test]
    fn insert_appends_to_cached_extents_instead_of_recomputing() {
        let mut db = Database::new(schema());
        db.insert("protein", vec![1.into(), "P100".into(), "human".into()])
            .unwrap();
        // Prime the cache with a doctored sentinel bag: if an insert recomputed the
        // extent the sentinel would vanish; incremental maintenance appends to it.
        let sentinel = Value::str("sentinel");
        db.store_extent(
            "protein".into(),
            Arc::new(Bag::from_values(vec![sentinel.clone()])),
        );
        db.store_extent(
            "protein,accession_num".into(),
            Arc::new(Bag::from_values(vec![sentinel.clone()])),
        );
        db.insert("protein", vec![2.into(), "P200".into(), Value::Null])
            .unwrap();
        let table_bag = db.cached_extent("protein").unwrap();
        assert_eq!(
            table_bag.items(),
            &[sentinel.clone(), Value::Int(2)],
            "table extent must gain the new key by append"
        );
        let col_bag = db.cached_extent("protein,accession_num").unwrap();
        assert_eq!(
            col_bag.items(),
            &[
                sentinel.clone(),
                Value::pair(Value::Int(2), Value::str("P200"))
            ]
        );
    }

    #[test]
    fn null_column_values_leave_cached_column_extent_unchanged() {
        let mut db = Database::new(schema());
        let sentinel = Value::str("sentinel");
        db.store_extent(
            "protein,organism".into(),
            Arc::new(Bag::from_values(vec![sentinel.clone()])),
        );
        db.insert("protein", vec![1.into(), "P100".into(), Value::Null])
            .unwrap();
        assert_eq!(
            db.cached_extent("protein,organism").unwrap().items(),
            &[sentinel],
            "null organism contributes nothing to the column extent"
        );
    }

    #[test]
    fn insert_into_other_table_leaves_cached_extents_alone() {
        let mut db = Database::new(schema());
        let sentinel = Value::str("sentinel");
        db.store_extent(
            "protein".into(),
            Arc::new(Bag::from_values(vec![sentinel.clone()])),
        );
        db.insert("link", vec![1.into(), 2.into()]).unwrap();
        assert_eq!(db.cached_extent("protein").unwrap().items(), &[sentinel]);
    }

    #[test]
    fn fully_qualified_cached_keys_are_maintained_too() {
        let mut db = Database::new(schema());
        let sentinel = Value::str("sentinel");
        db.store_extent(
            "sql,table,protein".into(),
            Arc::new(Bag::from_values(vec![sentinel.clone()])),
        );
        db.insert("protein", vec![3.into(), "P300".into(), Value::Null])
            .unwrap();
        assert_eq!(
            db.cached_extent("sql,table,protein").unwrap().items(),
            &[sentinel, Value::Int(3)]
        );
    }

    #[test]
    fn unknown_cached_key_shapes_are_dropped_on_insert() {
        let mut db = Database::new(schema());
        db.store_extent(
            "protein,no_such_column".into(),
            Arc::new(Bag::from_values(vec![Value::Int(0)])),
        );
        db.insert("protein", vec![1.into(), "P100".into(), Value::Null])
            .unwrap();
        assert!(db.cached_extent("protein,no_such_column").is_none());
    }

    #[test]
    fn version_bumps_on_every_insert() {
        let mut db = Database::new(schema());
        let v0 = db.data_version();
        db.insert("protein", vec![1.into(), "P100".into(), Value::Null])
            .unwrap();
        db.insert("protein", vec![2.into(), "P200".into(), Value::Null])
            .unwrap();
        assert_eq!(db.data_version(), v0 + 2);
        // Failed inserts mutate nothing and must not bump the version.
        let v2 = db.data_version();
        assert!(db
            .insert("protein", vec![1.into(), "P999".into(), Value::Null])
            .is_err());
        assert_eq!(db.data_version(), v2);
    }

    #[test]
    fn streaming_load_keeps_cached_extent_coherent() {
        // Prime the extent once, then stream many inserts: the cached bag must
        // track the table exactly (this is the incremental-maintenance path — the
        // seed behaviour recomputed the extent from scratch on every access).
        let mut db = Database::new(schema());
        db.insert("protein", vec![0.into(), "P0".into(), Value::Null])
            .unwrap();
        use iql::eval::ExtentProvider;
        use iql::SchemeRef;
        let _ = db.extent(&SchemeRef::table("protein")).unwrap();
        for i in 1..200i64 {
            db.insert(
                "protein",
                vec![i.into(), format!("P{i}").into(), Value::Null],
            )
            .unwrap();
        }
        let cached = db.extent(&SchemeRef::table("protein")).unwrap();
        assert_eq!(cached.len(), 200);
        assert_eq!(
            cached.items(),
            crate::wrapper::extent_of(&db, &SchemeRef::table("protein"))
                .unwrap()
                .items(),
            "incrementally maintained extent equals a fresh recompute"
        );
    }

    #[test]
    fn insert_many_bumps_version_once_per_batch() {
        let mut db = Database::new(schema());
        let v0 = db.data_version();
        db.insert_many(
            "protein",
            vec![
                vec![1.into(), "P100".into(), Value::Null],
                vec![2.into(), "P200".into(), "human".into()],
                vec![3.into(), "P300".into(), Value::Null],
            ],
        )
        .unwrap();
        assert_eq!(db.data_version(), v0 + 1, "one version delta per batch");
        assert_eq!(db.row_count("protein"), 3);
        // An empty batch is a no-op and must not move the version either.
        db.insert_many("protein", vec![]).unwrap();
        assert_eq!(db.data_version(), v0 + 1);
    }

    #[test]
    fn insert_many_is_atomic() {
        let mut db = Database::new(schema());
        db.insert("protein", vec![1.into(), "P100".into(), Value::Null])
            .unwrap();
        let v1 = db.data_version();
        let sentinel = Value::str("sentinel");
        db.store_extent(
            "protein".into(),
            Arc::new(Bag::from_values(vec![sentinel.clone()])),
        );
        // Second row collides with the existing key: the whole batch must be
        // rejected with nothing inserted, no version bump, caches untouched.
        let err = db.insert_many(
            "protein",
            vec![
                vec![2.into(), "P200".into(), Value::Null],
                vec![1.into(), "P999".into(), Value::Null],
            ],
        );
        assert!(matches!(err, Err(RelError::DuplicateKey { .. })));
        assert_eq!(db.row_count("protein"), 1);
        assert_eq!(db.data_version(), v1);
        assert_eq!(db.cached_extent("protein").unwrap().items(), &[sentinel]);
        // Same for a mid-batch validation error.
        assert!(matches!(
            db.insert_many(
                "protein",
                vec![
                    vec![2.into(), "P200".into(), Value::Null],
                    vec![3.into(), Value::Null, Value::Null],
                ],
            ),
            Err(RelError::NullViolation { .. })
        ));
        assert_eq!(db.row_count("protein"), 1);
        assert_eq!(db.data_version(), v1);
    }

    #[test]
    fn insert_many_rejects_intra_batch_duplicate_keys() {
        let mut db = Database::new(schema());
        assert!(matches!(
            db.insert_many(
                "protein",
                vec![
                    vec![1.into(), "P100".into(), Value::Null],
                    vec![1.into(), "P999".into(), Value::Null],
                ],
            ),
            Err(RelError::DuplicateKey { .. })
        ));
        assert_eq!(db.row_count("protein"), 0);
    }

    #[test]
    fn persistent_key_index_stays_coherent_across_calls_failures_and_clones() {
        let mut db = Database::new(schema());
        db.insert("protein", vec![1.into(), "P100".into(), Value::Null])
            .unwrap();
        // A rejected batch must leave no trace in the maintained key set: the
        // fresh key 2 from the failed batch stays insertable afterwards.
        assert!(matches!(
            db.insert_many(
                "protein",
                vec![
                    vec![2.into(), "P200".into(), Value::Null],
                    vec![1.into(), "P999".into(), Value::Null],
                ],
            ),
            Err(RelError::DuplicateKey { .. })
        ));
        db.insert("protein", vec![2.into(), "P200".into(), Value::Null])
            .unwrap();
        // Duplicates are caught across separate calls (through the index, not
        // a rescan) and after cloning (the clone carries the index along).
        assert!(matches!(
            db.insert("protein", vec![1.into(), "again".into(), Value::Null]),
            Err(RelError::DuplicateKey { .. })
        ));
        let mut copy = db.clone();
        assert!(matches!(
            copy.insert("protein", vec![2.into(), "again".into(), Value::Null]),
            Err(RelError::DuplicateKey { .. })
        ));
        copy.insert("protein", vec![3.into(), "P300".into(), Value::Null])
            .unwrap();
        assert_eq!(copy.row_count("protein"), 3);
        assert_eq!(db.row_count("protein"), 2);
    }

    #[test]
    fn insert_many_maintains_cached_extents_in_one_round() {
        let mut db = Database::new(schema());
        let sentinel = Value::str("sentinel");
        db.store_extent(
            "protein".into(),
            Arc::new(Bag::from_values(vec![sentinel.clone()])),
        );
        db.insert_many(
            "protein",
            vec![
                vec![1.into(), "P100".into(), Value::Null],
                vec![2.into(), "P200".into(), Value::Null],
            ],
        )
        .unwrap();
        assert_eq!(
            db.cached_extent("protein").unwrap().items(),
            &[sentinel, Value::Int(1), Value::Int(2)],
            "cached extent gains the whole batch by append, in batch order"
        );
    }

    #[test]
    fn insert_with_delta_reports_appended_extent_contributions() {
        let mut db = Database::new(schema());
        let delta = db
            .insert_many_with_delta(
                "protein",
                vec![
                    vec![1.into(), "P100".into(), "human".into()],
                    vec![2.into(), "P200".into(), Value::Null],
                ],
            )
            .unwrap();
        assert_eq!(delta.table, "protein");
        assert_eq!(
            delta.appended["protein"],
            vec![Value::Int(1), Value::Int(2)]
        );
        assert_eq!(
            delta.appended["protein,accession_num"],
            vec![
                Value::pair(Value::Int(1), Value::str("P100")),
                Value::pair(Value::Int(2), Value::str("P200")),
            ]
        );
        assert_eq!(
            delta.appended["protein,organism"],
            vec![Value::pair(Value::Int(1), Value::str("human"))],
            "null column values contribute nothing to the column extent"
        );
        let single = db
            .insert_with_delta("protein", vec![3.into(), "P300".into(), Value::Null])
            .unwrap();
        assert_eq!(single.appended["protein"], vec![Value::Int(3)]);
        assert!(!single.appended.contains_key("protein,organism"));
    }

    #[test]
    fn insert_many_refreshes_point_lookup_indexes_once_per_batch() {
        use iql::env::Env;
        use iql::eval::Evaluator;
        use iql::index::IndexStore;
        let mut db = Database::new(schema());
        db.insert("protein", vec![0.into(), "P0".into(), Value::Null])
            .unwrap();
        let store = Arc::new(IndexStore::new());
        let q = iql::parse("[x | {k, x} <- <<protein, accession_num>>; k = ?k]").unwrap();
        let env = Env::new().with_params(iql::Params::new().with("k", 0));
        {
            let ev = Evaluator::new(&db).with_index_store(Arc::clone(&store));
            ev.eval(&q, &env).unwrap();
        }
        assert_eq!(store.build_count(), 1);
        db.insert_many(
            "protein",
            (1..50i64)
                .map(|i| vec![i.into(), format!("P{i}").into(), Value::Null])
                .collect(),
        )
        .unwrap();
        let ev = Evaluator::new(&db).with_index_store(Arc::clone(&store));
        let env49 = Env::new().with_params(iql::Params::new().with("k", 49));
        let bag = ev.eval(&q, &env49).unwrap().expect_bag().unwrap();
        assert_eq!(bag.items(), &[Value::str("P49")]);
        assert_eq!(store.build_count(), 1, "no full rebuild after a batch");
        assert_eq!(
            store.refresh_count(),
            1,
            "one copy-on-write index refresh per batch, not one per row"
        );
    }

    #[test]
    fn float_column_accepts_ints() {
        let mut s = RelSchema::new("x");
        s.add_table(
            RelTable::new("m")
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("score", DataType::Float))
                .with_primary_key(["id"]),
        )
        .unwrap();
        let mut db = Database::new(s);
        assert!(db.insert("m", vec![1.into(), 5.into()]).is_ok());
        assert!(db.insert("m", vec![2.into(), Value::Float(5.5)]).is_ok());
    }
}
