//! An in-memory relational database.

use crate::error::RelError;
use crate::schema::{DataType, RelSchema, RelTable};
use iql::value::{Bag, Value};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A row of a table: one IQL value per column, in declaration order.
pub type Row = Vec<Value>;

/// An in-memory relational database: a schema plus rows per table.
///
/// Inserts are validated against the schema (arity, types, nullability, primary-key
/// uniqueness). The database also acts as an [`iql::ExtentProvider`] through the
/// wrapper in [`crate::wrapper`], so IQL queries can be evaluated directly against it;
/// computed extents are memoised per scheme (shared `Arc<Bag>` handles, invalidated on
/// insert) so repeated queries never rebuild or deep-copy an extent.
#[derive(Debug, Clone)]
pub struct Database {
    schema: RelSchema,
    rows: BTreeMap<String, Vec<Row>>,
    extent_cache: RefCell<BTreeMap<String, Arc<Bag>>>,
}

impl PartialEq for Database {
    /// Databases compare by schema and contents; the extent cache is derived state.
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows == other.rows
    }
}

impl Database {
    /// Create an empty database over the given schema.
    pub fn new(schema: RelSchema) -> Self {
        let rows = schema
            .tables()
            .map(|t| (t.name.clone(), Vec::new()))
            .collect();
        Database {
            schema,
            rows,
            extent_cache: RefCell::new(BTreeMap::new()),
        }
    }

    /// Cached extent for a scheme key, if previously computed.
    pub(crate) fn cached_extent(&self, scheme_key: &str) -> Option<Arc<Bag>> {
        self.extent_cache.borrow().get(scheme_key).cloned()
    }

    /// Memoise a computed extent.
    pub(crate) fn store_extent(&self, scheme_key: String, bag: Arc<Bag>) {
        self.extent_cache.borrow_mut().insert(scheme_key, bag);
    }

    /// Drop every cached extent touching `table`. Scheme keys mention the table as
    /// some comma-segment — first for abbreviated schemes (`protein`,
    /// `protein,accession_num`), later for fully-qualified ones
    /// (`sql,table,protein`) — so any key containing the segment is dropped.
    /// Over-invalidation (a column sharing the table's name) only costs a recompute.
    fn invalidate_extents(&mut self, table: &str) {
        self.extent_cache
            .get_mut()
            .retain(|key, _| key.split(',').all(|part| part != table));
    }

    /// The database's schema.
    pub fn schema(&self) -> &RelSchema {
        &self.schema
    }

    /// The data source name (same as the schema name).
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Insert a row into a table, validating arity, types, nullability and key
    /// uniqueness.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<(), RelError> {
        let t = self
            .schema
            .table(table)
            .ok_or_else(|| RelError::UnknownTable(table.to_string()))?;
        if row.len() != t.columns.len() {
            return Err(RelError::ArityMismatch {
                table: table.to_string(),
                expected: t.columns.len(),
                found: row.len(),
            });
        }
        for (col, val) in t.columns.iter().zip(row.iter()) {
            check_type(t, col.name.as_str(), col.data_type, col.nullable, val)?;
        }
        if !t.primary_key.is_empty() {
            let key = key_of(t, &row);
            if self
                .rows
                .get(table)
                .map(|rows| rows.iter().any(|r| key_of(t, r) == key))
                .unwrap_or(false)
            {
                return Err(RelError::DuplicateKey {
                    table: table.to_string(),
                    key: format!("{key:?}"),
                });
            }
        }
        self.rows.entry(table.to_string()).or_default().push(row);
        self.invalidate_extents(table);
        Ok(())
    }

    /// Insert many rows, stopping at the first error.
    pub fn insert_many(&mut self, table: &str, rows: Vec<Row>) -> Result<(), RelError> {
        for row in rows {
            self.insert(table, row)?;
        }
        Ok(())
    }

    /// All rows of a table (empty if the table has no rows or does not exist).
    pub fn rows(&self, table: &str) -> &[Row] {
        self.rows.get(table).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of rows in a table.
    pub fn row_count(&self, table: &str) -> usize {
        self.rows(table).len()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.rows.values().map(Vec::len).sum()
    }

    /// Project a single column of a table as a vector of values.
    pub fn column_values(&self, table: &str, column: &str) -> Result<Vec<Value>, RelError> {
        let t = self
            .schema
            .table(table)
            .ok_or_else(|| RelError::UnknownTable(table.to_string()))?;
        let idx = t
            .column_index(column)
            .ok_or_else(|| RelError::UnknownColumn {
                table: table.to_string(),
                column: column.to_string(),
            })?;
        Ok(self.rows(table).iter().map(|r| r[idx].clone()).collect())
    }

    /// The primary-key value of each row of a table. Single-column keys produce the
    /// bare value; composite keys produce a tuple.
    pub fn key_values(&self, table: &str) -> Result<Vec<Value>, RelError> {
        let t = self
            .schema
            .table(table)
            .ok_or_else(|| RelError::UnknownTable(table.to_string()))?;
        Ok(self.rows(table).iter().map(|r| key_of(t, r)).collect())
    }

    /// Find the rows of a table whose primary key equals `key`.
    pub fn find_by_key(&self, table: &str, key: &Value) -> Vec<&Row> {
        match self.schema.table(table) {
            Some(t) => self
                .rows(table)
                .iter()
                .filter(|r| &key_of(t, r) == key)
                .collect(),
            None => Vec::new(),
        }
    }
}

/// Compute the primary-key value of a row: the key column's value, or a tuple of them
/// for composite keys, or the whole row when the table declares no key.
pub fn key_of(table: &RelTable, row: &Row) -> Value {
    if table.primary_key.is_empty() {
        return Value::tuple(row.clone());
    }
    let mut parts = Vec::with_capacity(table.primary_key.len());
    for k in &table.primary_key {
        let idx = table.column_index(k).expect("validated key column");
        parts.push(row[idx].clone());
    }
    if parts.len() == 1 {
        parts.pop().expect("one element")
    } else {
        Value::tuple(parts)
    }
}

fn check_type(
    table: &RelTable,
    column: &str,
    expected: DataType,
    nullable: bool,
    value: &Value,
) -> Result<(), RelError> {
    let ok = match (expected, value) {
        (_, Value::Null) => {
            if nullable {
                true
            } else {
                return Err(RelError::NullViolation {
                    table: table.name.clone(),
                    column: column.to_string(),
                });
            }
        }
        (DataType::Int, Value::Int(_)) => true,
        (DataType::Float, Value::Float(_)) | (DataType::Float, Value::Int(_)) => true,
        (DataType::Text, Value::Str(_)) => true,
        (DataType::Bool, Value::Bool(_)) => true,
        _ => false,
    };
    if ok {
        Ok(())
    } else {
        Err(RelError::TypeMismatch {
            table: table.name.clone(),
            column: column.to_string(),
            expected: expected.to_string(),
            found: value.type_name().to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{RelColumn, RelTable};

    fn schema() -> RelSchema {
        let mut s = RelSchema::new("pedro");
        s.add_table(
            RelTable::new("protein")
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("accession_num", DataType::Text))
                .with_column(RelColumn::nullable("organism", DataType::Text))
                .with_primary_key(["id"]),
        )
        .unwrap();
        s.add_table(
            RelTable::new("link")
                .with_column(RelColumn::new("a", DataType::Int))
                .with_column(RelColumn::new("b", DataType::Int))
                .with_primary_key(["a", "b"]),
        )
        .unwrap();
        s
    }

    #[test]
    fn insert_and_project() {
        let mut db = Database::new(schema());
        db.insert("protein", vec![1.into(), "P100".into(), "human".into()])
            .unwrap();
        db.insert("protein", vec![2.into(), "P200".into(), Value::Null])
            .unwrap();
        assert_eq!(db.row_count("protein"), 2);
        assert_eq!(
            db.column_values("protein", "accession_num").unwrap(),
            vec![Value::str("P100"), Value::str("P200")]
        );
        assert_eq!(
            db.key_values("protein").unwrap(),
            vec![Value::Int(1), Value::Int(2)]
        );
    }

    #[test]
    fn arity_and_type_checks() {
        let mut db = Database::new(schema());
        assert!(matches!(
            db.insert("protein", vec![1.into()]),
            Err(RelError::ArityMismatch { .. })
        ));
        assert!(matches!(
            db.insert("protein", vec!["x".into(), "P1".into(), Value::Null]),
            Err(RelError::TypeMismatch { .. })
        ));
        assert!(matches!(
            db.insert("protein", vec![1.into(), Value::Null, Value::Null]),
            Err(RelError::NullViolation { .. })
        ));
        assert!(matches!(
            db.insert("missing", vec![]),
            Err(RelError::UnknownTable(_))
        ));
    }

    #[test]
    fn primary_key_uniqueness_enforced() {
        let mut db = Database::new(schema());
        db.insert("protein", vec![1.into(), "P100".into(), Value::Null])
            .unwrap();
        assert!(matches!(
            db.insert("protein", vec![1.into(), "P999".into(), Value::Null]),
            Err(RelError::DuplicateKey { .. })
        ));
    }

    #[test]
    fn composite_keys_are_tuples() {
        let mut db = Database::new(schema());
        db.insert("link", vec![1.into(), 2.into()]).unwrap();
        db.insert("link", vec![1.into(), 3.into()]).unwrap();
        assert!(matches!(
            db.insert("link", vec![1.into(), 2.into()]),
            Err(RelError::DuplicateKey { .. })
        ));
        let keys = db.key_values("link").unwrap();
        assert_eq!(keys[0], Value::tuple(vec![Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn find_by_key() {
        let mut db = Database::new(schema());
        db.insert("protein", vec![7.into(), "P700".into(), Value::Null])
            .unwrap();
        let found = db.find_by_key("protein", &Value::Int(7));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0][1], Value::str("P700"));
        assert!(db.find_by_key("protein", &Value::Int(8)).is_empty());
    }

    #[test]
    fn float_column_accepts_ints() {
        let mut s = RelSchema::new("x");
        s.add_table(
            RelTable::new("m")
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("score", DataType::Float))
                .with_primary_key(["id"]),
        )
        .unwrap();
        let mut db = Database::new(s);
        assert!(db.insert("m", vec![1.into(), 5.into()]).is_ok());
        assert!(db.insert("m", vec![2.into(), Value::Float(5.5)]).is_ok());
    }
}
