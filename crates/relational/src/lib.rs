//! # relational — relational sources for the dataspace substrate
//!
//! This crate provides the *data source* side of the reproduction:
//!
//! * [`schema`] — relational schema descriptions (tables, columns, keys, foreign keys);
//! * [`store`] — a small in-memory relational database holding rows of IQL values —
//!   the in-memory [`storage::StorageEngine`];
//! * [`storage`] — the MVCC storage layer beneath [`iql::ExtentProvider`]:
//!   snapshot-stamped append-only batches, pinned [`storage::Snapshot`] handles,
//!   and the [`storage::StorageEngine`] trait;
//! * [`wal`] — the file-backed, checksummed commit log that makes a storage
//!   engine's history durable (one record per committed batch, replayed on
//!   recovery by `core::Dataspace::open`);
//! * [`datagen`] — seeded synthetic data generation with controllable cross-database
//!   value overlap (used to stand in for the proteomics databases of the case study);
//! * [`wrapper`] — the AutoMed-style wrapper view of a database: schema objects are
//!   exposed under relational *schemes* (`⟨⟨table⟩⟩`, `⟨⟨table, column⟩⟩`) and their
//!   extents follow the paper's convention — a table scheme's extent is the bag of
//!   primary-key values and a column scheme's extent is a bag of `{key, value}` pairs;
//! * [`hdm_lowering`] — lowering of a relational schema onto the HDM, mirroring how a
//!   modelling language is defined in terms of the HDM in the Model Definitions
//!   Repository.
//!
//! ## Concurrency and versioning contract
//!
//! A [`Database`] is an [`iql::ExtentProvider`]: the layered query engine (the
//! `automed` virtual-extent resolver, the `core` dataspace, and the evaluator's
//! parallel extent fetch) calls [`iql::ExtentProvider::extent`] from many
//! threads at once, so the per-scheme extent memo sits behind an `RwLock` and
//! hands out shared `Arc<Bag>`s. Every insert bumps a monotonic **version
//! stamp** ([`Database::data_version`]) and maintains cached extents
//! *incrementally* (copy-on-write append) instead of invalidating them; the
//! version stamp is what retires stale [`iql::PlanCache`] entries and clears
//! the dataspace's stamped extent memo upstream (see `docs/ARCHITECTURE.md`).
//!
//! ```
//! use relational::{schema::{RelSchema, RelTable, RelColumn, DataType}, store::Database};
//! use iql::{parse, Evaluator};
//!
//! let mut schema = RelSchema::new("pedro");
//! schema.add_table(
//!     RelTable::new("protein")
//!         .with_column(RelColumn::new("id", DataType::Int))
//!         .with_column(RelColumn::new("accession_num", DataType::Text))
//!         .with_primary_key(["id"]),
//! ).unwrap();
//!
//! let mut db = Database::new(schema);
//! db.insert("protein", vec![1.into(), "P100".into()]).unwrap();
//!
//! let q = parse("[x | {k, x} <- <<protein, accession_num>>]").unwrap();
//! let result = Evaluator::new(&db).eval_closed(&q).unwrap();
//! assert_eq!(result.expect_bag().unwrap().len(), 1);
//! ```

pub mod datagen;
pub mod error;
pub mod hdm_lowering;
pub mod schema;
pub mod storage;
pub mod store;
pub mod wal;
pub mod wrapper;

pub use error::RelError;
pub use schema::{DataType, ForeignKey, RelColumn, RelSchema, RelTable};
pub use storage::{BatchCommit, Snapshot, SnapshotId, StorageEngine};
pub use store::{Database, Row};
pub use wal::{CommitLog, LogRecord};
