//! Relational schema descriptions.

use crate::error::RelError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Column data types. Deliberately small; the dataspace layer cares about structure
/// and values, not about a full SQL type system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Text => write!(f, "TEXT"),
            DataType::Bool => write!(f, "BOOL"),
        }
    }
}

/// A column of a relational table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelColumn {
    /// Column name.
    pub name: String,
    /// Declared data type.
    pub data_type: DataType,
    /// Whether null values are accepted.
    pub nullable: bool,
}

impl RelColumn {
    /// A non-nullable column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        RelColumn {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: impl Into<String>, data_type: DataType) -> Self {
        RelColumn {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }
}

/// A foreign-key declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    /// Referencing columns in this table.
    pub columns: Vec<String>,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced columns (usually the primary key of `ref_table`).
    pub ref_columns: Vec<String>,
}

/// A relational table: ordered columns, a primary key and foreign keys.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelTable {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<RelColumn>,
    /// Primary-key column names (subset of `columns`).
    pub primary_key: Vec<String>,
    /// Foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
}

impl RelTable {
    /// A table with no columns yet (builder style).
    pub fn new(name: impl Into<String>) -> Self {
        RelTable {
            name: name.into(),
            columns: Vec::new(),
            primary_key: Vec::new(),
            foreign_keys: Vec::new(),
        }
    }

    /// Add a column (builder style).
    pub fn with_column(mut self, column: RelColumn) -> Self {
        self.columns.push(column);
        self
    }

    /// Declare the primary key (builder style).
    pub fn with_primary_key<I, S>(mut self, columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.primary_key = columns.into_iter().map(Into::into).collect();
        self
    }

    /// Declare a foreign key (builder style).
    pub fn with_foreign_key(
        mut self,
        columns: &[&str],
        ref_table: &str,
        ref_columns: &[&str],
    ) -> Self {
        self.foreign_keys.push(ForeignKey {
            columns: columns.iter().map(|s| s.to_string()).collect(),
            ref_table: ref_table.to_string(),
            ref_columns: ref_columns.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Option<&RelColumn> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Names of the non-key columns (in declaration order).
    pub fn non_key_columns(&self) -> Vec<&str> {
        self.columns
            .iter()
            .filter(|c| !self.primary_key.contains(&c.name))
            .map(|c| c.name.as_str())
            .collect()
    }

    /// Validate internal consistency (keys reference existing columns, no duplicates).
    pub fn validate(&self) -> Result<(), RelError> {
        let mut seen = std::collections::BTreeSet::new();
        for c in &self.columns {
            if !seen.insert(&c.name) {
                return Err(RelError::DuplicateColumn {
                    table: self.name.clone(),
                    column: c.name.clone(),
                });
            }
        }
        for k in &self.primary_key {
            if self.column(k).is_none() {
                return Err(RelError::BadKey {
                    table: self.name.clone(),
                    detail: format!("primary key column `{k}` does not exist"),
                });
            }
        }
        for fk in &self.foreign_keys {
            if fk.columns.len() != fk.ref_columns.len() {
                return Err(RelError::BadKey {
                    table: self.name.clone(),
                    detail: "foreign key column count mismatch".into(),
                });
            }
            for c in &fk.columns {
                if self.column(c).is_none() {
                    return Err(RelError::BadKey {
                        table: self.name.clone(),
                        detail: format!("foreign key column `{c}` does not exist"),
                    });
                }
            }
        }
        Ok(())
    }
}

/// A relational schema: a named collection of tables.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelSchema {
    /// Schema (data source) name.
    pub name: String,
    tables: BTreeMap<String, RelTable>,
}

impl RelSchema {
    /// An empty schema.
    pub fn new(name: impl Into<String>) -> Self {
        RelSchema {
            name: name.into(),
            tables: BTreeMap::new(),
        }
    }

    /// Add a table; validates the table and name freshness.
    pub fn add_table(&mut self, table: RelTable) -> Result<(), RelError> {
        table.validate()?;
        if self.tables.contains_key(&table.name) {
            return Err(RelError::DuplicateTable(table.name));
        }
        self.tables.insert(table.name.clone(), table);
        Ok(())
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Option<&RelTable> {
        self.tables.get(name)
    }

    /// Iterate over tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &RelTable> {
        self.tables.values()
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total number of columns across all tables.
    pub fn column_count(&self) -> usize {
        self.tables.values().map(|t| t.columns.len()).sum()
    }

    /// Validate every table and check that foreign keys reference existing tables and
    /// columns.
    pub fn validate(&self) -> Result<(), RelError> {
        for t in self.tables.values() {
            t.validate()?;
            for fk in &t.foreign_keys {
                let target = self
                    .table(&fk.ref_table)
                    .ok_or_else(|| RelError::UnknownTable(fk.ref_table.clone()))?;
                for rc in &fk.ref_columns {
                    if target.column(rc).is_none() {
                        return Err(RelError::UnknownColumn {
                            table: fk.ref_table.clone(),
                            column: rc.clone(),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn protein_table() -> RelTable {
        RelTable::new("protein")
            .with_column(RelColumn::new("id", DataType::Int))
            .with_column(RelColumn::new("accession_num", DataType::Text))
            .with_column(RelColumn::nullable("organism", DataType::Text))
            .with_primary_key(["id"])
    }

    #[test]
    fn table_builder_and_lookup() {
        let t = protein_table();
        assert_eq!(t.column_index("accession_num"), Some(1));
        assert_eq!(t.non_key_columns(), vec!["accession_num", "organism"]);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn bad_primary_key_detected() {
        let t = RelTable::new("x")
            .with_column(RelColumn::new("a", DataType::Int))
            .with_primary_key(["missing"]);
        assert!(matches!(t.validate(), Err(RelError::BadKey { .. })));
    }

    #[test]
    fn duplicate_column_detected() {
        let t = RelTable::new("x")
            .with_column(RelColumn::new("a", DataType::Int))
            .with_column(RelColumn::new("a", DataType::Text));
        assert!(matches!(
            t.validate(),
            Err(RelError::DuplicateColumn { .. })
        ));
    }

    #[test]
    fn schema_foreign_key_validation() {
        let mut s = RelSchema::new("pedro");
        s.add_table(protein_table()).unwrap();
        s.add_table(
            RelTable::new("proteinhit")
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("protein", DataType::Int))
                .with_primary_key(["id"])
                .with_foreign_key(&["protein"], "protein", &["id"]),
        )
        .unwrap();
        assert!(s.validate().is_ok());

        let mut bad = RelSchema::new("bad");
        bad.add_table(
            RelTable::new("a")
                .with_column(RelColumn::new("id", DataType::Int))
                .with_primary_key(["id"])
                .with_foreign_key(&["id"], "nonexistent", &["id"]),
        )
        .unwrap();
        assert!(matches!(bad.validate(), Err(RelError::UnknownTable(_))));
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut s = RelSchema::new("pedro");
        s.add_table(protein_table()).unwrap();
        assert!(matches!(
            s.add_table(protein_table()),
            Err(RelError::DuplicateTable(_))
        ));
        assert_eq!(s.table_count(), 1);
        assert_eq!(s.column_count(), 3);
    }
}
