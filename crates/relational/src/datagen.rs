//! Seeded synthetic data generation.
//!
//! The paper's case study integrates three proteomics databases whose real contents
//! are not available. What the evaluation depends on is (i) the schema structure and
//! (ii) the presence of *overlapping* instances across the sources (shared protein
//! accession numbers, shared peptide sequences), so that intersection-schema queries
//! return meaningful joins. This module provides deterministic, seeded generators for
//! exactly that: pools of shared identifiers with a configurable overlap fraction,
//! plus per-table row generators.

use crate::error::RelError;
use crate::store::Database;
use iql::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for generating a pool of identifiers shared across data sources.
#[derive(Debug, Clone)]
pub struct OverlapConfig {
    /// Total number of distinct identifiers in the *shared* pool.
    pub shared_pool: usize,
    /// Fraction (0.0–1.0) of each source's rows drawn from the shared pool; the rest
    /// are source-private identifiers.
    pub overlap_fraction: f64,
}

impl Default for OverlapConfig {
    fn default() -> Self {
        OverlapConfig {
            shared_pool: 100,
            overlap_fraction: 0.5,
        }
    }
}

/// A deterministic generator of synthetic identifiers and values.
#[derive(Debug)]
pub struct DataGenerator {
    rng: StdRng,
    /// Prefix used for source-private identifiers (usually the source name).
    pub source: String,
    config: OverlapConfig,
}

impl DataGenerator {
    /// Create a generator for a named source with the given seed and overlap settings.
    pub fn new(source: impl Into<String>, seed: u64, config: OverlapConfig) -> Self {
        DataGenerator {
            rng: StdRng::seed_from_u64(seed),
            source: source.into(),
            config,
        }
    }

    /// A protein accession number. With probability `overlap_fraction` it is drawn
    /// from the shared pool (`ACC<j>`), otherwise it is private to this source.
    pub fn accession(&mut self) -> String {
        if self.rng.gen_bool(self.config.overlap_fraction) {
            let j = self.rng.gen_range(0..self.config.shared_pool);
            format!("ACC{j:05}")
        } else {
            let j: u32 = self.rng.gen_range(0..1_000_000);
            format!("{}-ACC{j:06}", self.source.to_uppercase())
        }
    }

    /// A peptide amino-acid sequence. Shared-pool sequences are deterministic
    /// functions of the pool index so that different sources generate identical
    /// strings for the same index.
    pub fn peptide_sequence(&mut self) -> String {
        const AMINO: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";
        if self.rng.gen_bool(self.config.overlap_fraction) {
            let j = self.rng.gen_range(0..self.config.shared_pool);
            // Deterministic pseudo-sequence for pool index j.
            let mut seq = String::new();
            let mut state = j as u64 * 2654435761 + 12345;
            for _ in 0..12 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                seq.push(AMINO[(state >> 33) as usize % AMINO.len()] as char);
            }
            seq
        } else {
            let len = self.rng.gen_range(8..18);
            (0..len)
                .map(|_| AMINO[self.rng.gen_range(0..AMINO.len())] as char)
                .collect()
        }
    }

    /// An organism name from a small fixed vocabulary.
    pub fn organism(&mut self) -> String {
        const ORGANISMS: &[&str] = &[
            "Homo sapiens",
            "Mus musculus",
            "Rattus norvegicus",
            "Saccharomyces cerevisiae",
            "Escherichia coli",
            "Drosophila melanogaster",
        ];
        ORGANISMS[self.rng.gen_range(0..ORGANISMS.len())].to_string()
    }

    /// A free-text description.
    pub fn description(&mut self) -> String {
        const HEADS: &[&str] = &["Putative", "Probable", "Uncharacterized", "Conserved"];
        const BODIES: &[&str] = &[
            "kinase",
            "membrane protein",
            "transcription factor",
            "hydrolase",
            "transport protein",
            "ribosomal protein",
        ];
        format!(
            "{} {} {}",
            HEADS[self.rng.gen_range(0..HEADS.len())],
            BODIES[self.rng.gen_range(0..BODIES.len())],
            self.rng.gen_range(1..999)
        )
    }

    /// A search-engine score in `[0, 100)`.
    pub fn score(&mut self) -> f64 {
        (self.rng.gen::<f64>() * 10_000.0).round() / 100.0
    }

    /// An expectation/probability value in `(0, 1]`.
    pub fn probability(&mut self) -> f64 {
        let p: f64 = self.rng.gen_range(0.000_01..1.0);
        (p * 100_000.0).round() / 100_000.0
    }

    /// A uniformly drawn integer in `[lo, hi)`.
    pub fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.gen_range(lo..hi)
    }

    /// A boolean with the given probability of being true.
    pub fn flag(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }
}

/// Populate a table with rows produced by a closure, checking each insert.
///
/// The closure receives the row index and must produce a full row for `table`.
pub fn populate<F>(
    db: &mut Database,
    table: &str,
    rows: usize,
    mut make_row: F,
) -> Result<(), RelError>
where
    F: FnMut(usize) -> Vec<Value>,
{
    for i in 0..rows {
        db.insert(table, make_row(i))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, RelColumn, RelSchema, RelTable};

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = OverlapConfig::default();
        let mut a = DataGenerator::new("pedro", 42, cfg.clone());
        let mut b = DataGenerator::new("pedro", 42, cfg.clone());
        let mut c = DataGenerator::new("pedro", 43, cfg);
        let seq_a: Vec<String> = (0..20).map(|_| a.accession()).collect();
        let seq_b: Vec<String> = (0..20).map(|_| b.accession()).collect();
        let seq_c: Vec<String> = (0..20).map(|_| c.accession()).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn shared_pool_produces_cross_source_overlap() {
        let cfg = OverlapConfig {
            shared_pool: 10,
            overlap_fraction: 1.0,
        };
        let mut pedro = DataGenerator::new("pedro", 1, cfg.clone());
        let mut gpmdb = DataGenerator::new("gpmdb", 2, cfg);
        let pedro_accs: std::collections::BTreeSet<String> =
            (0..50).map(|_| pedro.accession()).collect();
        let gpmdb_accs: std::collections::BTreeSet<String> =
            (0..50).map(|_| gpmdb.accession()).collect();
        assert!(pedro_accs.intersection(&gpmdb_accs).count() > 0);
    }

    #[test]
    fn zero_overlap_keeps_sources_disjoint() {
        let cfg = OverlapConfig {
            shared_pool: 10,
            overlap_fraction: 0.0,
        };
        let mut pedro = DataGenerator::new("pedro", 1, cfg.clone());
        let mut gpmdb = DataGenerator::new("gpmdb", 2, cfg);
        let pedro_accs: std::collections::BTreeSet<String> =
            (0..30).map(|_| pedro.accession()).collect();
        let gpmdb_accs: std::collections::BTreeSet<String> =
            (0..30).map(|_| gpmdb.accession()).collect();
        assert_eq!(pedro_accs.intersection(&gpmdb_accs).count(), 0);
    }

    #[test]
    fn shared_peptide_sequences_match_across_sources() {
        let cfg = OverlapConfig {
            shared_pool: 5,
            overlap_fraction: 1.0,
        };
        let mut a = DataGenerator::new("pedro", 7, cfg.clone());
        let mut b = DataGenerator::new("pepseeker", 8, cfg);
        let seqs_a: std::collections::BTreeSet<String> =
            (0..40).map(|_| a.peptide_sequence()).collect();
        let seqs_b: std::collections::BTreeSet<String> =
            (0..40).map(|_| b.peptide_sequence()).collect();
        // With a pool of 5 and full overlap, both sources draw from the same 5 strings.
        assert!(seqs_a.len() <= 5);
        assert!(seqs_a.intersection(&seqs_b).count() > 0);
    }

    #[test]
    fn populate_inserts_requested_rows() {
        let mut s = RelSchema::new("x");
        s.add_table(
            RelTable::new("t")
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("v", DataType::Text))
                .with_primary_key(["id"]),
        )
        .unwrap();
        let mut db = Database::new(s);
        populate(&mut db, "t", 25, |i| {
            vec![(i as i64).into(), format!("v{i}").into()]
        })
        .unwrap();
        assert_eq!(db.row_count("t"), 25);
    }

    #[test]
    fn value_ranges_are_sane() {
        let mut g = DataGenerator::new("pedro", 5, OverlapConfig::default());
        for _ in 0..100 {
            let s = g.score();
            assert!((0.0..100.0).contains(&s));
            let p = g.probability();
            assert!(p > 0.0 && p <= 1.0);
            let i = g.int_in(3, 9);
            assert!((3..9).contains(&i));
        }
        assert!(!g.organism().is_empty());
        assert!(!g.description().is_empty());
    }
}
