//! The AutoMed-style wrapper view of a relational database.
//!
//! Wrapping a data source is the first step of every integration workflow in the
//! paper: the wrapper extracts the source's metadata as a set of *schemes* and exposes
//! the extent of every schema object. Following the paper's convention for the
//! relational modelling language:
//!
//! * a table `t` is represented by the scheme `⟨⟨t⟩⟩` whose extent is the bag of
//!   primary-key values of `t`;
//! * a column `c` of `t` is represented by the scheme `⟨⟨t, c⟩⟩` whose extent is the
//!   bag of `{key, value}` pairs (null column values are omitted, since the paper's
//!   extents list only present values).

use crate::schema::RelSchema;
use crate::storage::{Snapshot, SnapshotId, StorageEngine};
use crate::store::{key_of, Database};
use iql::ast::SchemeRef;
use iql::error::EvalError;
use iql::eval::ExtentProvider;
use iql::value::{Bag, Value};
use std::sync::Arc;

/// The kind of relational construct a scheme denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelConstruct {
    /// A table scheme `⟨⟨t⟩⟩`.
    Table,
    /// A column scheme `⟨⟨t, c⟩⟩`.
    Column,
}

/// One wrapped schema object: its scheme and construct kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrappedObject {
    /// The scheme identifying the object.
    pub scheme: SchemeRef,
    /// Whether the scheme denotes a table or a column.
    pub construct: RelConstruct,
}

/// Extract the schemes of all schema objects of a relational schema, tables first and
/// then columns, each table's objects grouped together in declaration order.
pub fn scheme_objects(schema: &RelSchema) -> Vec<WrappedObject> {
    let mut out = Vec::new();
    for table in schema.tables() {
        out.push(WrappedObject {
            scheme: SchemeRef::table(&table.name),
            construct: RelConstruct::Table,
        });
        for column in &table.columns {
            out.push(WrappedObject {
                scheme: SchemeRef::column(&table.name, &column.name),
                construct: RelConstruct::Column,
            });
        }
    }
    out
}

/// Whether a scheme names an object of this relational schema — i.e. whether
/// [`extent_of`] would succeed against a database over it. Used by the virtual
/// query processor to decide statically whether a scheme reference inside a
/// transformation query resolves in the source or recurses into the integrated
/// schema (its cycle check depends on that distinction).
pub fn covers(schema: &RelSchema, scheme: &SchemeRef) -> bool {
    match scheme.parts.as_slice() {
        [table] => schema.table(table).is_some(),
        [table, column] => schema
            .table(table)
            .is_some_and(|t| t.column_index(column).is_some()),
        [lang, _construct, rest @ ..] if lang == "sql" && !rest.is_empty() => {
            covers(schema, &SchemeRef::new(rest.iter().cloned()))
        }
        _ => false,
    }
}

/// Compute the extent of a scheme against a database, following the wrapper
/// conventions described in the module documentation. Reads at the engine's
/// current snapshot; [`extent_of_at`] reads at a pinned one.
pub fn extent_of(db: &Database, scheme: &SchemeRef) -> Result<Bag, EvalError> {
    extent_of_at(db, scheme, db.data_version())
}

/// Compute the extent of a scheme against any [`StorageEngine`] **as of** a
/// snapshot: only rows committed at or before `snapshot` contribute. This is
/// the wrapper's MVCC read path — a reader holding a [`Snapshot`] pin sees an
/// immutable, consistent extent however many batches writers append meanwhile.
pub fn extent_of_at<S: StorageEngine + ?Sized>(
    engine: &S,
    scheme: &SchemeRef,
    snapshot: SnapshotId,
) -> Result<Bag, EvalError> {
    match scheme.parts.as_slice() {
        [table] => {
            let t = engine
                .schema()
                .table(table)
                .ok_or_else(|| EvalError::UnknownScheme(scheme.clone()))?;
            let mut bag = Bag::empty();
            for row in engine.visible_rows(table, snapshot) {
                bag.push(key_of(t, row));
            }
            Ok(bag)
        }
        [table, column] => {
            let t = engine
                .schema()
                .table(table)
                .ok_or_else(|| EvalError::UnknownScheme(scheme.clone()))?;
            let idx = t
                .column_index(column)
                .ok_or_else(|| EvalError::UnknownScheme(scheme.clone()))?;
            let mut bag = Bag::empty();
            for row in engine.visible_rows(table, snapshot) {
                let value = &row[idx];
                if matches!(value, Value::Null) {
                    continue;
                }
                bag.push(Value::pair(key_of(t, row), value.clone()));
            }
            Ok(bag)
        }
        // Fully-qualified schemes such as ⟨⟨sql, table, t⟩⟩ are accepted by stripping
        // the modelling-language and construct-kind prefixes.
        [lang, construct, rest @ ..] if lang == "sql" && !rest.is_empty() => {
            let stripped = SchemeRef::new(rest.iter().cloned());
            let _ = construct;
            extent_of_at(engine, &stripped, snapshot)
        }
        _ => Err(EvalError::UnknownScheme(scheme.clone())),
    }
}

/// An [`ExtentProvider`] pinned to one MVCC snapshot of a database.
///
/// Every `extent` call answers **as of** the pinned snapshot, and
/// [`ExtentProvider::version`] reports the snapshot's id for the view's whole
/// lifetime — so plans, indexes and histograms built against a view stay valid
/// however many batches are committed to the underlying database meanwhile,
/// and a query evaluated through it can never observe a torn, mid-batch state.
#[derive(Debug)]
pub struct SnapshotView<'a> {
    db: &'a Database,
    snapshot: Snapshot,
}

impl Database {
    /// Pin the current snapshot and return a provider view over it (counted in
    /// [`StorageEngine::snapshots_active`] until the view drops).
    pub fn snapshot_view(&self) -> SnapshotView<'_> {
        self.view_at(self.begin_snapshot())
    }

    /// A provider view over an already-pinned snapshot (for sharing one pin
    /// across several readers).
    pub fn view_at(&self, snapshot: Snapshot) -> SnapshotView<'_> {
        SnapshotView { db: self, snapshot }
    }
}

impl SnapshotView<'_> {
    /// The pinned snapshot's id.
    pub fn snapshot_id(&self) -> SnapshotId {
        self.snapshot.id()
    }
}

impl ExtentProvider for SnapshotView<'_> {
    fn extent(&self, scheme: &SchemeRef) -> Result<Arc<Bag>, EvalError> {
        if self.snapshot.id() >= self.db.data_version() {
            // The view pins the latest snapshot: serve (and populate) the
            // database's shared extent memo instead of rebuilding.
            return self.db.extent(scheme);
        }
        Ok(Arc::new(extent_of_at(self.db, scheme, self.snapshot.id())?))
    }

    /// The pinned snapshot id — constant for the view's lifetime, as an
    /// immutable provider's stamp should be.
    fn version(&self) -> SnapshotId {
        self.snapshot.id()
    }

    fn extents_append_only(&self) -> bool {
        true
    }
}

impl ExtentProvider for Database {
    /// Computed extents are memoised on the database (shared handles, maintained
    /// incrementally by inserts), so answering many queries against one source never
    /// rebuilds a bag. The memo is `RwLock`-guarded, satisfying the
    /// [`ExtentProvider`] `Sync` contract: a shared `&Database` can serve concurrent
    /// queries from many threads.
    fn extent(&self, scheme: &SchemeRef) -> Result<Arc<Bag>, EvalError> {
        let key = scheme.key();
        if let Some(bag) = self.cached_extent(&key) {
            return Ok(bag);
        }
        let bag = Arc::new(extent_of(self, scheme)?);
        self.store_extent(key, Arc::clone(&bag));
        Ok(bag)
    }

    /// Inserts bump the database's version, invalidating plan-cache entries built
    /// over the previous contents (see [`iql::PlanCache`]).
    fn version(&self) -> u64 {
        self.data_version()
    }

    /// Inserts only ever append to a table — and the extent memo is maintained
    /// by pushing each new row's contribution onto the cached bags — so extent
    /// prefixes are stable across versions. This unlocks copy-on-write refresh
    /// of point-lookup indexes and key histograms (only the appended tail is
    /// scanned; see [`iql::eval::ExtentProvider::extents_append_only`]).
    fn extents_append_only(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, RelColumn, RelSchema, RelTable};
    use iql::{parse, Evaluator};

    fn db() -> Database {
        let mut s = RelSchema::new("pedro");
        s.add_table(
            RelTable::new("protein")
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("accession_num", DataType::Text))
                .with_column(RelColumn::nullable("organism", DataType::Text))
                .with_primary_key(["id"]),
        )
        .unwrap();
        let mut db = Database::new(s);
        db.insert("protein", vec![1.into(), "P100".into(), "human".into()])
            .unwrap();
        db.insert("protein", vec![2.into(), "P200".into(), Value::Null])
            .unwrap();
        db
    }

    #[test]
    fn scheme_objects_enumerated() {
        let objs = scheme_objects(db().schema());
        assert_eq!(objs.len(), 4); // table + 3 columns
        assert_eq!(objs[0].scheme, SchemeRef::table("protein"));
        assert_eq!(objs[0].construct, RelConstruct::Table);
        assert!(objs
            .iter()
            .any(|o| o.scheme == SchemeRef::column("protein", "organism")));
    }

    #[test]
    fn table_extent_is_key_bag() {
        let bag = extent_of(&db(), &SchemeRef::table("protein")).unwrap();
        assert_eq!(bag.len(), 2);
        assert!(bag.contains(&Value::Int(1)));
    }

    #[test]
    fn column_extent_is_key_value_pairs_without_nulls() {
        let bag = extent_of(&db(), &SchemeRef::column("protein", "organism")).unwrap();
        assert_eq!(bag.len(), 1);
        assert!(bag.contains(&Value::pair(Value::Int(1), Value::str("human"))));
    }

    #[test]
    fn fully_qualified_scheme_accepted() {
        let bag = extent_of(&db(), &SchemeRef::new(["sql", "table", "protein"])).unwrap();
        assert_eq!(bag.len(), 2);
    }

    #[test]
    fn database_is_an_extent_provider() {
        let q = parse("[x | {k, x} <- <<protein, accession_num>>; k = 2]").unwrap();
        let v = Evaluator::new(&db()).eval_closed(&q).unwrap();
        assert_eq!(v.expect_bag().unwrap().items(), &[Value::str("P200")]);
    }

    #[test]
    fn extent_cache_invalidated_on_insert_for_all_scheme_forms() {
        let mut database = db();
        // Prime the cache through both the abbreviated and fully-qualified forms.
        let abbreviated = SchemeRef::table("protein");
        let qualified = SchemeRef::new(["sql", "table", "protein"]);
        assert_eq!(database.extent(&abbreviated).unwrap().len(), 2);
        assert_eq!(database.extent(&qualified).unwrap().len(), 2);
        database
            .insert("protein", vec![3.into(), "P300".into(), Value::Null])
            .unwrap();
        assert_eq!(database.extent(&abbreviated).unwrap().len(), 3);
        assert_eq!(database.extent(&qualified).unwrap().len(), 3);
    }

    #[test]
    fn repeated_extent_calls_share_one_bag() {
        let database = db();
        let a = database.extent(&SchemeRef::table("protein")).unwrap();
        let b = database.extent(&SchemeRef::table("protein")).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_view_reads_are_immutable_under_later_inserts() {
        let mut database = db();
        let view_snapshot = database.begin_snapshot();
        let before = extent_of(&database, &SchemeRef::table("protein")).unwrap();
        database
            .insert("protein", vec![3.into(), "P300".into(), Value::Null])
            .unwrap();
        // A view pinned before the insert answers the old extent; the live
        // database (and a freshly pinned view) answer the new one.
        let view = database.view_at(view_snapshot);
        assert_eq!(view.extent(&SchemeRef::table("protein")).unwrap().len(), 2);
        assert_eq!(
            view.extent(&SchemeRef::table("protein")).unwrap().items(),
            before.items()
        );
        assert_eq!(
            view.extent(&SchemeRef::column("protein", "organism"))
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            database.extent(&SchemeRef::table("protein")).unwrap().len(),
            3
        );
        assert_eq!(
            database
                .snapshot_view()
                .extent(&SchemeRef::table("protein"))
                .unwrap()
                .len(),
            3
        );
    }

    #[test]
    fn snapshot_view_version_is_the_pinned_id_and_stays_put() {
        let mut database = db();
        let view_snapshot = database.begin_snapshot();
        let pinned = view_snapshot.id();
        database
            .insert("protein", vec![3.into(), "P300".into(), Value::Null])
            .unwrap();
        let view = database.view_at(view_snapshot);
        assert_eq!(ExtentProvider::version(&view), pinned);
        assert_ne!(ExtentProvider::version(&database), pinned);
        assert_eq!(database.snapshots_active(), 1);
        drop(view);
        assert_eq!(database.snapshots_active(), 0);
    }

    #[test]
    fn current_snapshot_view_serves_the_shared_memo() {
        let database = db();
        let scheme = SchemeRef::table("protein");
        let through_db = database.extent(&scheme).unwrap();
        let through_view = database.snapshot_view().extent(&scheme).unwrap();
        assert!(Arc::ptr_eq(&through_db, &through_view));
    }

    #[test]
    fn unknown_schemes_error() {
        assert!(extent_of(&db(), &SchemeRef::table("nope")).is_err());
        assert!(extent_of(&db(), &SchemeRef::column("protein", "nope")).is_err());
        assert!(extent_of(&db(), &SchemeRef::new(["a", "b", "c", "d"])).is_err());
    }
}
