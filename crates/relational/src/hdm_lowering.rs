//! Lowering a relational schema onto the HDM.
//!
//! This mirrors how a modelling language is *defined in terms of the HDM* in the Model
//! Definitions Repository: a table `t` becomes an HDM node `t`; each column `c` of `t`
//! becomes a value node `t:c` plus a binary edge `c(t, t:c)`; primary-key columns gain
//! a uniqueness constraint; foreign keys become inclusion constraints between the key
//! node of the referencing table and the node of the referenced table.

use crate::schema::RelSchema;
use crate::store::{key_of, Database};
use hdm::{Constraint, Edge, HdmInstance, HdmSchema, HdmValue, Node};
use iql::value::Value;

/// Lower a relational schema to an HDM schema.
pub fn lower_schema(schema: &RelSchema) -> HdmSchema {
    let mut hdm = HdmSchema::new(schema.name.clone());
    for table in schema.tables() {
        // Node for the table itself (its extent will be the key values).
        let _ = hdm.add_node(Node::new(&table.name));
        for column in &table.columns {
            let value_node = format!("{}:{}", table.name, column.name);
            let _ = hdm.add_node(Node::new(&value_node));
            let _ = hdm.add_edge(Edge::binary(&column.name, &table.name, &value_node));
            if table.primary_key.len() == 1 && table.primary_key[0] == column.name {
                let edge_id = format!("{}({},{})", column.name, table.name, value_node);
                let _ = hdm.add_constraint(Constraint::Unique {
                    edge: edge_id,
                    position: 0,
                });
            }
        }
    }
    // A single-column foreign key becomes an inclusion constraint: the values held by
    // the referencing column's value node must appear among the referenced table's
    // keys.
    for table in schema.tables() {
        for fk in &table.foreign_keys {
            if let [col] = fk.columns.as_slice() {
                let _ = hdm.add_constraint(Constraint::Inclusion {
                    sub: format!("{}:{}", table.name, col),
                    sup: fk.ref_table.clone(),
                });
            }
        }
    }
    hdm
}

/// Lower the contents of a database to an HDM instance over [`lower_schema`]'s output.
pub fn lower_instance(db: &Database) -> HdmInstance {
    let mut inst = HdmInstance::new();
    for table in db.schema().tables() {
        for row in db.rows(table.name.as_str()) {
            let key = to_hdm(&key_of(table, row));
            inst.insert_scalar(&table.name, key.clone());
            for (column, value) in table.columns.iter().zip(row.iter()) {
                if matches!(value, Value::Null) {
                    continue;
                }
                let value_node = format!("{}:{}", table.name, column.name);
                let edge_id = format!("{}({},{})", column.name, table.name, value_node);
                inst.insert_scalar(value_node, to_hdm(value));
                inst.insert(edge_id, vec![key.clone(), to_hdm(value)]);
            }
        }
    }
    inst
}

/// Convert an IQL scalar into an HDM scalar. Tuples (composite keys) are flattened to
/// their textual form, since HDM scalars are flat.
fn to_hdm(value: &Value) -> HdmValue {
    match value {
        Value::Null => HdmValue::Null,
        Value::Bool(b) => HdmValue::Bool(*b),
        Value::Int(i) => HdmValue::Int(*i),
        Value::Float(f) => HdmValue::float(*f),
        Value::Str(s) => HdmValue::str(s.as_ref()),
        other => HdmValue::str(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, RelColumn, RelTable};

    fn schema() -> RelSchema {
        let mut s = RelSchema::new("pedro");
        s.add_table(
            RelTable::new("protein")
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("accession_num", DataType::Text))
                .with_primary_key(["id"]),
        )
        .unwrap();
        s.add_table(
            RelTable::new("proteinhit")
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("protein", DataType::Int))
                .with_primary_key(["id"])
                .with_foreign_key(&["protein"], "protein", &["id"]),
        )
        .unwrap();
        s
    }

    #[test]
    fn lowering_produces_nodes_edges_constraints() {
        let hdm = lower_schema(&schema());
        assert!(hdm.has_node("protein"));
        assert!(hdm.has_node("protein:accession_num"));
        assert!(hdm.has_edge("accession_num(protein,protein:accession_num)"));
        assert!(hdm.validate().is_ok());
        // one unique constraint per single-column PK + one inclusion per FK
        assert!(hdm.constraints().len() >= 3);
    }

    #[test]
    fn instance_lowering_populates_extents() {
        let mut db = Database::new(schema());
        db.insert("protein", vec![1.into(), "P100".into()]).unwrap();
        db.insert("proteinhit", vec![10.into(), 1.into()]).unwrap();
        let hdm_schema = lower_schema(db.schema());
        let inst = lower_instance(&db);
        assert_eq!(inst.cardinality("protein"), 1);
        assert_eq!(
            inst.cardinality("accession_num(protein,protein:accession_num)"),
            1
        );
        assert!(inst.validate_against(&hdm_schema).is_ok());
    }

    #[test]
    fn null_values_are_skipped() {
        let mut s = RelSchema::new("x");
        s.add_table(
            RelTable::new("t")
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::nullable("v", DataType::Text))
                .with_primary_key(["id"]),
        )
        .unwrap();
        let mut db = Database::new(s);
        db.insert("t", vec![1.into(), Value::Null]).unwrap();
        let inst = lower_instance(&db);
        assert_eq!(inst.cardinality("t"), 1);
        assert_eq!(inst.cardinality("v(t,t:v)"), 0);
    }
}
