//! Errors for relational schema and store operations.

use std::fmt;

/// Errors raised by relational schema construction and data manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// A table with this name already exists in the schema.
    DuplicateTable(String),
    /// A column with this name already exists in the table.
    DuplicateColumn { table: String, column: String },
    /// The named table does not exist.
    UnknownTable(String),
    /// The named column does not exist in the table.
    UnknownColumn { table: String, column: String },
    /// A primary-key or foreign-key declaration references a missing column.
    BadKey { table: String, detail: String },
    /// A row has the wrong number of values for its table.
    ArityMismatch {
        table: String,
        expected: usize,
        found: usize,
    },
    /// A value's type does not match the column's declared type.
    TypeMismatch {
        table: String,
        column: String,
        expected: String,
        found: String,
    },
    /// A row with the same primary key already exists.
    DuplicateKey { table: String, key: String },
    /// A NOT NULL column received a null value.
    NullViolation { table: String, column: String },
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::DuplicateTable(t) => write!(f, "duplicate table `{t}`"),
            RelError::DuplicateColumn { table, column } => {
                write!(f, "duplicate column `{column}` in table `{table}`")
            }
            RelError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            RelError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            RelError::BadKey { table, detail } => {
                write!(f, "bad key declaration on `{table}`: {detail}")
            }
            RelError::ArityMismatch {
                table,
                expected,
                found,
            } => write!(
                f,
                "row for `{table}` has {found} values, expected {expected}"
            ),
            RelError::TypeMismatch {
                table,
                column,
                expected,
                found,
            } => write!(
                f,
                "type mismatch for `{table}.{column}`: expected {expected}, found {found}"
            ),
            RelError::DuplicateKey { table, key } => {
                write!(f, "duplicate primary key {key} in `{table}`")
            }
            RelError::NullViolation { table, column } => {
                write!(f, "null value for NOT NULL column `{table}.{column}`")
            }
        }
    }
}

impl std::error::Error for RelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_identifiers() {
        let e = RelError::UnknownColumn {
            table: "protein".into(),
            column: "organism".into(),
        };
        let s = e.to_string();
        assert!(s.contains("protein") && s.contains("organism"));
    }
}
