//! Regenerates the pinned golden snapshots of `tests/table1_golden.rs`:
//! prints each Table-1 priority query's answer size and canonically sorted rows
//! at `CaseStudyScale::tiny()`.
//!
//! Paper scenario: the Table 1 priority-query set over the fully integrated
//! proteomics dataspace (maintenance tooling for this repo's golden tests, not
//! a figure of the paper itself). Expected output: for each of Q1–Q7, a
//! `<name>: <n> rows` header followed by the canonically sorted row listing —
//! paste-ready for `tests/table1_golden.rs` when the fixture data changes.
//!
//! Run with: `cargo run --example golden_probe`.

use dataspace_core::dataspace::{Dataspace, DataspaceConfig};
use proteomics::intersection_integration::all_iterations;
use proteomics::queries::priority_queries;
use proteomics::sources::{generate_gpmdb, generate_pedro, generate_pepseeker, CaseStudyScale};

fn main() {
    let scale = CaseStudyScale::tiny();
    let mut ds = Dataspace::with_config(DataspaceConfig {
        drop_redundant: false,
        ..Default::default()
    });
    ds.add_source(generate_pedro(&scale)).unwrap();
    ds.add_source(generate_gpmdb(&scale)).unwrap();
    ds.add_source(generate_pepseeker(&scale)).unwrap();
    ds.federate().unwrap();
    for (_q, spec) in all_iterations().unwrap() {
        ds.integrate(spec).unwrap();
    }
    for q in priority_queries() {
        let bag = ds.prepare(&q.iql).unwrap().execute(&q.params).unwrap();
        let mut canon: Vec<String> = bag.iter().map(|v| v.to_string()).collect();
        canon.sort();
        println!("== {} len={} ==", q.name, bag.len());
        println!("{}", canon.join("\n"));
    }
}
