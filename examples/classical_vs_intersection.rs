//! Side-by-side comparison of the two integration methodologies (E2).
//!
//! The classical methodology maps every source object up front (three global-schema
//! stages GS1/GS2/GS3); the intersection-schema methodology integrates only what the
//! next priority query needs. The comparison metric is the paper's: the number of
//! non-trivial, manually-defined transformations.
//!
//! Paper scenario: the E2 intersection-vs-classical effort comparison (§3.2 /
//! Figure 6). Expected output: one effort table per methodology (non-trivial
//! manual transformation counts per stage/iteration) followed by a summary
//! line showing the intersection methodology's total is the smaller of the two.
//!
//! Run with: `cargo run --release --example classical_vs_intersection`

use proteomics::case_study::compare_methodologies;
use proteomics::classical_integration::{
    PAPER_GS1_GPMDB, PAPER_GS1_PEPSEEKER, PAPER_GS2_PEPSEEKER, PAPER_TOTAL_NONTRIVIAL,
};
use proteomics::intersection_integration::{PAPER_ITERATION_COUNTS, PAPER_TOTAL_MANUAL};
use proteomics::sources::CaseStudyScale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (run, classical, comparison) = compare_methodologies(&CaseStudyScale::default())?;

    println!("== intersection-schema methodology (query-driven, pay-as-you-go) ==");
    for (i, outcome) in run.outcomes.iter().enumerate() {
        println!(
            "  iteration {i} ({}): {} manual transformations, {} queries answerable",
            outcome.effort.label,
            outcome.effort.manual_transformations,
            outcome.progress.answerable_count()
        );
    }
    println!(
        "  total: {} manual transformations (paper: {} = {:?})",
        run.total_manual_transformations, PAPER_TOTAL_MANUAL, PAPER_ITERATION_COUNTS
    );

    println!("\n== classical methodology (complete up-front integration) ==");
    for stage in &classical.stages {
        println!(
            "  {}: {} non-trivial transformations",
            stage.name, stage.nontrivial_total
        );
        for (source, n) in &stage.nontrivial_by_source {
            println!("      from {source}: {n}");
        }
    }
    println!(
        "  total: {} non-trivial transformations (paper: {} = {} + {} + {})",
        classical.total_nontrivial,
        PAPER_TOTAL_NONTRIVIAL,
        PAPER_GS1_GPMDB,
        PAPER_GS1_PEPSEEKER,
        PAPER_GS2_PEPSEEKER
    );

    println!("\n== headline comparison ==");
    println!("{}", comparison.render());
    println!(
        "note: with the classical methodology no query is answerable until all {} transformations are defined;\n\
         with intersection schemas the first priority query is answerable after {} transformations.",
        classical.total_nontrivial,
        run.outcomes
            .get(1)
            .map(|o| o.effort.cumulative_manual)
            .unwrap_or(0)
    );
    Ok(())
}
