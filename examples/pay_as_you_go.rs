//! Pay-as-you-go integration: watch queries become answerable iteration by iteration.
//!
//! This example drives the case-study integration one iteration at a time and, after
//! every iteration, reports which of the seven priority queries can now be answered
//! and at what cumulative manual cost — the behaviour that distinguishes a dataspace
//! (incremental, pay-as-you-go) from a classical up-front integration.
//!
//! Paper scenario: the pay-as-you-go curve over the Table 1 query set (§3,
//! queries becoming answerable as intersection iterations land). Expected
//! output: one block per iteration (federation, then I1…I5) listing the
//! iteration's manual cost, the cumulative cost, and a ✓/✗ line per priority
//! query — strictly more ✓s after every iteration, all seven at the end.
//!
//! Run with: `cargo run --release --example pay_as_you_go`

use dataspace_core::dataspace::{Dataspace, DataspaceConfig};
use dataspace_core::workflow::IntegrationSession;
use proteomics::intersection_integration::all_iterations;
use proteomics::queries::priority_queries;
use proteomics::sources::{generate_gpmdb, generate_pedro, generate_pepseeker, CaseStudyScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = CaseStudyScale::default();
    let dataspace = Dataspace::with_config(DataspaceConfig {
        drop_redundant: false,
        ..Default::default()
    });
    let mut session = IntegrationSession::with_dataspace(dataspace);
    session.add_source(generate_pedro(&scale))?;
    session.add_source(generate_gpmdb(&scale))?;
    session.add_source(generate_pepseeker(&scale))?;
    session.set_priority_queries(priority_queries());

    let total = session.priority_queries().len();
    let outcome = session.federate()?;
    println!(
        "iteration 0 (federation): 0 manual transformations, {}/{} queries answerable: {:?}\n",
        outcome.progress.answerable_count(),
        total,
        outcome.progress.answerable_queries
    );

    for (driven_by, spec) in all_iterations()? {
        let label = spec.name.clone();
        let outcome = session.iterate(spec)?;
        println!(
            "iteration {} ({label}, driven by {driven_by}): +{} manual (cumulative {}), {}/{} queries answerable",
            outcome.effort.iteration,
            outcome.effort.manual_transformations,
            outcome.effort.cumulative_manual,
            outcome.progress.answerable_count(),
            total,
        );
        if !outcome.newly_answerable.is_empty() {
            println!("  newly answerable: {:?}", outcome.newly_answerable);
        }
        println!();
    }

    println!("final pay-as-you-go curve:\n{}", session.render_curve());
    println!(
        "all priority queries answerable: {}",
        session.all_queries_answerable()
    );
    Ok(())
}
