//! Matcher-assisted mapping definition (E6/E8): use the schema matcher to propose the
//! correspondences between Pedro and PepSeeker, review them, and turn the accepted
//! ones into an intersection schema with the headless Intersection Schema Tool
//! (Figure 5 without the GUI).
//!
//! Paper scenario: the mapping-definition step of the workflow (§2.3 step 4,
//! Figure 5) assisted by schema matching, as envisaged in the paper's E6/E8
//! discussion. Expected output: the matcher's ranked correspondence proposals
//! with scores, the accepted subset, and the resulting intersection schema's
//! object list with its queryable extent sizes.
//!
//! Run with: `cargo run --release --example schema_matching_assist`

use automed::wrapper::SourceRegistry;
use automed::{ConstructKind, Repository};
use dataspace_core::tool::IntersectionSchemaTool;
use matching::{MatchConfig, Matcher};
use proteomics::sources::{generate_pedro, generate_pepseeker, CaseStudyScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = CaseStudyScale::default();
    let mut registry = SourceRegistry::new();
    let pedro = registry.add_source(generate_pedro(&scale))?;
    let pepseeker = registry.add_source(generate_pepseeker(&scale))?;

    // 1. Ask the matcher for suggestions (names + sampled instances).
    let matcher = Matcher::with_config(MatchConfig {
        threshold: 0.6,
        ..MatchConfig::default()
    });
    let suggestions = matcher.match_with_instances(&pedro, &pepseeker, &registry);
    let best = Matcher::best_per_left(&suggestions);
    println!("== matcher suggestions (pedro ↔ pepseeker) ==");
    for s in &best {
        println!(
            "  {:<38} ↔ {:<42} name={:.2} instance={} combined={:.2}",
            s.left.to_string(),
            s.right.to_string(),
            s.name_score,
            s.instance_score
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "n/a".into()),
            s.combined
        );
    }

    // 2. Turn two accepted suggestions into an intersection schema via the tool.
    let mut repository = Repository::new();
    repository.add_source_schema(pedro.clone())?;
    repository.add_source_schema(pepseeker.clone())?;
    let mut tool = IntersectionSchemaTool::new(&repository, "I_matched");
    tool.new_object("UPeptideHit,sequence", ConstructKind::Column);
    tool.select_object("pedro", "peptidehit,sequence")?;
    tool.select_object("pepseeker", "peptidehit,pepseq")?;
    tool.new_object("UPeptideHit,score", ConstructKind::Column);
    tool.select_object("pedro", "peptidehit,score")?;
    tool.select_object("pepseeker", "peptidehit,score")?;

    println!("\n== mappings table (as the Intersection Schema Tool would show it) ==");
    println!("{}", tool.mapping_table()?.render());

    let spec = tool.finish()?;
    println!(
        "intersection `{}` ready: {} objects, {} manually-defined transformations",
        spec.name,
        spec.mappings.len(),
        spec.manual_transformation_count()
    );
    Ok(())
}
