//! Quickstart: two tiny sources, one intersection schema, one cross-source query.
//!
//! Paper scenario: a minimal end-to-end pass over the six-step workflow of
//! §2.3 (wrap → federate → intersect → derive global → query) — the smallest
//! version of what the proteomics case study does at scale. Expected output: a
//! handful of lines showing the federated query answers, the integration
//! iteration's effort, the final cross-source join result (the accession
//! shared by both sources), and a prepared accession lookup re-executed
//! across bindings — one cached plan serving all of them.
//!
//! Run with: `cargo run --example quickstart`

use dataspace_core::dataspace::Dataspace;
use dataspace_core::mapping::{IntersectionSpec, ObjectMapping, SourceContribution};
use relational::schema::{DataType, RelColumn, RelSchema, RelTable};
use relational::Database;

fn build_pedro() -> Database {
    let mut schema = RelSchema::new("pedro");
    schema
        .add_table(
            RelTable::new("protein")
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("accession_num", DataType::Text))
                .with_column(RelColumn::new("organism", DataType::Text))
                .with_primary_key(["id"]),
        )
        .expect("valid table");
    let mut db = Database::new(schema);
    for (id, acc, org) in [
        (1, "ACC00001", "Homo sapiens"),
        (2, "ACC00002", "Mus musculus"),
        (3, "ACC00003", "Homo sapiens"),
    ] {
        db.insert("protein", vec![id.into(), acc.into(), org.into()])
            .expect("insert");
    }
    db
}

fn build_gpmdb() -> Database {
    let mut schema = RelSchema::new("gpmdb");
    schema
        .add_table(
            RelTable::new("proseq")
                .with_column(RelColumn::new("proseqid", DataType::Int))
                .with_column(RelColumn::new("label", DataType::Text))
                .with_primary_key(["proseqid"]),
        )
        .expect("valid table");
    let mut db = Database::new(schema);
    for (id, acc) in [(10, "ACC00002"), (11, "ACC00003"), (12, "ACC00099")] {
        db.insert("proseq", vec![id.into(), acc.into()])
            .expect("insert");
    }
    db
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Wrap the sources and build the dataspace.
    let mut ds = Dataspace::new();
    ds.add_source(build_pedro())?;
    ds.add_source(build_gpmdb())?;

    // 2. Federate: zero mapping effort, queryable immediately.
    ds.federate()?;
    println!("== federated schema (zero effort) ==");
    println!("{}", ds.federated_schema()?);
    println!(
        "proteins known to Pedro alone: {}",
        ds.query_value("count <<PEDRO_protein>>")?
    );

    // 3. One intersection-schema iteration: Pedro.protein ∩ gpmDB.proseq.
    let spec = IntersectionSpec::new("I_protein")
        .with_mapping(
            ObjectMapping::table("UProtein")
                .with_contribution(SourceContribution::parsed(
                    "pedro",
                    "[{'PEDRO', k} | k <- <<protein>>]",
                    ["protein"],
                )?)
                .with_contribution(SourceContribution::parsed(
                    "gpmdb",
                    "[{'gpmDB', k} | k <- <<proseq>>]",
                    ["proseq"],
                )?),
        )
        .with_mapping(
            ObjectMapping::column("UProtein", "accession_num")
                .with_contribution(SourceContribution::parsed(
                    "pedro",
                    "[{'PEDRO', k, x} | {k, x} <- <<protein, accession_num>>]",
                    ["protein,accession_num"],
                )?)
                .with_contribution(SourceContribution::parsed(
                    "gpmdb",
                    "[{'gpmDB', k, x} | {k, x} <- <<proseq, label>>]",
                    ["proseq,label"],
                )?),
        );
    let record = ds.integrate(spec)?;
    println!("\n== after one intersection-schema iteration ==");
    println!(
        "manually-defined transformations this iteration: {}",
        record.manual_transformations
    );
    println!(
        "global schema now has {} objects",
        ds.global_schema()?.len()
    );

    // 4. Query across the sources through the integrated concept.
    let shared = ds.query(
        "[x | {s1, k1, x} <- <<UProtein, accession_num>>; {s2, k2, y} <- <<UProtein, accession_num>>; x = y; s1 = 'PEDRO'; s2 = 'gpmDB']",
    )?;
    println!("\naccession numbers reported by BOTH sources: {shared}");
    println!(
        "total protein records across the dataspace: {}",
        ds.query_value("count <<UProtein>>")?
    );

    // 5. The service shape: prepare a parameterised query once, execute it
    //    under many bindings — one cached plan serves all of them, and the
    //    values never touch the query text (quotes are safe).
    let by_accession =
        ds.prepare("[{s, k} | {s, k, x} <- <<UProtein, accession_num>>; x = ?acc]")?;
    println!("\n== prepared lookups (one plan, many bindings) ==");
    for acc in ["ACC00002", "ACC00003", "ACC00099", "it's-not-there"] {
        let hits = by_accession.execute(&iql::Params::new().with("acc", acc))?;
        println!("  {acc}: {} identification(s)", hits.len());
    }
    let stats = ds.stats();
    println!(
        "plan cache: {} hit(s), {} miss(es), {} plan(s) held",
        stats.plan_cache_hits, stats.plan_cache_misses, stats.plan_cache_len
    );

    println!("\neffort report:\n{}", ds.effort_report().render());
    Ok(())
}
