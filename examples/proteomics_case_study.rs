//! The full iSpider case study (§3 of the paper): query-driven intersection-schema
//! integration of Pedro, gpmDB and PepSeeker, the seven priority queries (Table 1),
//! and the effort comparison against the classical integration.
//!
//! Paper scenario: the complete §3 iSpider proteomics case study — source
//! wrapping, federation, the five intersection iterations, the Table 1 query
//! set, and the effort accounting. Expected output: per-iteration integration
//! reports, each Table-1 query's answer size at the generated scale (batched
//! through `Dataspace::query_all`), and the closing effort comparison.
//!
//! Run with: `cargo run --release --example proteomics_case_study`

use proteomics::case_study::{compare_methodologies, render_curve, render_table1};
use proteomics::sources::CaseStudyScale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = CaseStudyScale::default();
    println!(
        "generating synthetic sources (proteins={}, protein hits={}, peptide hits={}, overlap={})…\n",
        scale.proteins, scale.protein_hits, scale.peptide_hits, scale.overlap
    );

    let (run, classical, comparison) = compare_methodologies(&scale)?;

    println!("== E1: the seven priority queries over the integrated dataspace (Table 1) ==");
    println!("{}", render_table1(&run));

    println!("== E3: pay-as-you-go curve (effort vs answerable queries) ==");
    println!(
        "{}",
        render_curve(&run.session.pay_as_you_go_curve(), run.answers.len())
    );

    println!("== per-iteration effort (intersection-schema methodology) ==");
    println!("{}", run.session.dataspace().effort_report().render());

    println!("== classical (up-front) integration stages ==");
    for stage in &classical.stages {
        println!(
            "{}: {} non-trivial transformations — {}",
            stage.name, stage.nontrivial_total, stage.description
        );
    }

    println!("\n== E2: methodology comparison (the paper's 26 vs 95) ==");
    println!("{}", comparison.render());
    Ok(())
}
