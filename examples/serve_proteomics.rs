//! Serve the integrated proteomics dataspace over the wire protocol.
//!
//! Paper scenario: the §3 iSpider dataspace — Pedro, gpmDB and PepSeeker
//! federated and integrated through the five intersection iterations — exposed
//! to remote clients as a network service: the Table 1 queries run over TCP as
//! prepared statements, and standing queries push deltas to subscribers as
//! writes commit.
//!
//! Two modes:
//!
//! - `cargo run --release --example serve_proteomics` — integrate the sources,
//!   attach a commit log, bind a port and serve until Enter is pressed.
//! - `cargo run --release --example serve_proteomics -- --smoke` — additionally
//!   drive one client through the whole surface (prepare → execute → subscribe
//!   → insert → push → streamed query → checkpoint → stats) and shut down
//!   cleanly; used as the CI server smoke step.

use std::sync::{Arc, RwLock};
use std::time::Duration;

use dataspace_core::dataspace::{Dataspace, DataspaceConfig};
use iql::Value;
use proteomics::intersection_integration::all_iterations;
use proteomics::queries::{q1, Q1_IQL};
use proteomics::sources::{generate_gpmdb, generate_pedro, generate_pepseeker, CaseStudyScale};
use server::ServerConfig;
use wire::{Client, PushUpdate};

/// Standing query maintained O(delta) on `pedro.protein` inserts.
const ACCESSION_FEED: &str = "[x | {k, x} <- <<PEDRO_protein, PEDRO_accession_num>>]";
/// Streamed scan used to demonstrate client-acked chunking.
const ACCESSION_SCAN: &str = "[{k, x} | {k, x} <- <<PEDRO_protein, PEDRO_accession_num>>]";

fn build_dataspace(scale: &CaseStudyScale) -> Result<Dataspace, Box<dyn std::error::Error>> {
    let mut ds = Dataspace::with_config(DataspaceConfig {
        drop_redundant: false, // keep federated extents queryable alongside UProtein
        ..DataspaceConfig::default()
    });
    ds.add_source(generate_pedro(scale))?;
    ds.add_source(generate_gpmdb(scale))?;
    ds.add_source(generate_pepseeker(scale))?;
    ds.federate()?;
    for (_query, spec) in all_iterations()? {
        ds.integrate(spec)?;
    }
    Ok(ds)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke {
        CaseStudyScale::tiny()
    } else {
        CaseStudyScale::default()
    };

    println!(
        "integrating proteomics sources (proteins={}, overlap={})…",
        scale.proteins, scale.overlap
    );
    let mut ds = build_dataspace(&scale)?;

    // Attach a commit log so inserts are durable and Checkpoint has a log to
    // compact. A throwaway path keeps the example re-runnable.
    let wal_path =
        std::env::temp_dir().join(format!("serve_proteomics_{}.wal", std::process::id()));
    let replay = ds.open(&wal_path)?;
    println!(
        "commit log attached at {} ({} batches replayed)",
        wal_path.display(),
        replay.batches_replayed
    );

    let ds = Arc::new(RwLock::new(ds));
    let handle = server::serve(Arc::clone(&ds), ("127.0.0.1", 0), ServerConfig::default())?;
    let addr = handle.local_addr();
    println!("serving on {addr}");

    if smoke {
        run_smoke(addr)?;
        handle.shutdown();
        println!("smoke ok: server shut down cleanly");
    } else {
        println!("press Enter to stop…");
        let mut line = String::new();
        std::io::stdin().read_line(&mut line)?;
        handle.shutdown();
        println!("server shut down cleanly");
    }
    std::fs::remove_file(&wal_path).ok();
    Ok(())
}

/// One client, the whole protocol surface, every step checked.
fn run_smoke(addr: std::net::SocketAddr) -> Result<(), Box<dyn std::error::Error>> {
    let mut client = Client::connect(addr)?;

    // Prepare the paper's Q1 and the standing accession feed.
    let (q1_handle, param_names) = client.prepare(Q1_IQL)?;
    assert_eq!(param_names, vec!["accession".to_string()]);
    let (feed, _) = client.prepare(ACCESSION_FEED)?;
    println!("prepared Q1 (handle {q1_handle}) and the accession feed (handle {feed})");

    // Subscribe before writing: the new accession must arrive as a push.
    let (sub_id, initial) = client.subscribe(feed, &iql::Params::new())?;
    let initial_len = match &initial {
        Value::Bag(b) => b.len(),
        other => return Err(format!("expected bag-shaped standing result, got {other:?}").into()),
    };
    println!("subscribed (sub {sub_id}): {initial_len} accessions standing");

    // Insert a protein nothing in the synthetic data can collide with.
    let inserted = client.insert(
        "pedro",
        "protein",
        vec![vec![
            1_000_000.into(),
            "WIREACC1".into(),
            "wire-protocol smoke protein".into(),
            "E. remoti".into(),
            Value::Float(42_000.0),
            Value::Null,
        ]],
    )?;
    assert_eq!(inserted, 1);

    // The committed delta is pushed exactly once, without re-execution.
    match client.recv_push(Duration::from_secs(5))? {
        Some((got_sub, PushUpdate::Delta(rows))) => {
            assert_eq!(got_sub, sub_id);
            assert_eq!(rows, vec![Value::from("WIREACC1")]);
            println!("push received: delta of {} row(s)", rows.len());
        }
        other => return Err(format!("expected one delta push, got {other:?}").into()),
    }

    // The prepared Q1 sees the new row.
    let hits = client.execute(q1_handle, &q1("WIREACC1"))?;
    assert_eq!(hits.len(), 1);
    println!("Q1(WIREACC1) over the wire: {} hit", hits.len());

    // Streamed scan: bounded chunks, advanced only on client acks.
    let (rows, chunks) = client.query_chunked(ACCESSION_SCAN, 5)?;
    assert!(chunks >= 2, "expected multiple chunks, got {chunks}");
    println!(
        "streamed scan: {} rows across {chunks} acked chunks",
        rows.len()
    );

    // Checkpoint compacts the attached commit log.
    let (before, after) = client.checkpoint()?;
    println!("checkpoint: {before} log records compacted to {after}");

    // Server counters ride the stats surface.
    let stats = client.stats()?;
    let get = |name: &str| {
        stats
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing stat {name}"))
    };
    assert!(get("server_requests_prepare") >= 2);
    assert_eq!(get("server_pushes_sent"), 1);
    assert!(get("server_chunks_sent") >= chunks as u64);
    assert_eq!(get("server_session_panics"), 0);
    println!(
        "stats: {} connections accepted, {} bytes in, {} bytes out",
        get("server_connections_accepted"),
        get("server_bytes_in"),
        get("server_bytes_out"),
    );

    client.unsubscribe(sub_id)?;
    client.close()?;
    Ok(())
}
